// Package explain is the A/B drill-down behind `repro -explain` and
// simd's GET /v1/explain: it walks from a surface-level cycle diff down
// to annotated disassembly in one pass. Given two sides — each a
// compiler configuration name (re-measured on demand) or a .mcst store
// file — it pairs their points by (bench, bus, waits, cachekb)
// *ignoring the config name*, ranks the worst movers, then re-simulates
// the top movers with cycle-accounting engines to produce per-PC stall
// heatmaps and stall-cause-annotated disassembly for both sides.
//
// Everything here is deterministic: the same sides and query produce
// byte-identical reports (text and JSON), including under a parallel
// lab — the acceptance property the explain-smoke make target checks.
package explain

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dis"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/store"
)

// Query is one parsed explain request.
type Query struct {
	// A and B each name a side: a compiler configuration ("D16/16/2",
	// "d16", ...) or a path to a .mcst measurement store.
	A string
	B string

	// Selection narrows the paired surface (store.Filter semantics;
	// -1 numeric fields are wild).
	Bench   string
	Bus     int64
	Waits   int64
	CacheKB int64

	// Top is how many worst movers get the full drill-down.
	Top int
	// Rows caps each side's stall-heatmap rows per drill.
	Rows int
	// MissPenalty is the per-miss cycle cost used when re-simulating
	// cached (cachekb > 0) points.
	MissPenalty int64
	// Threshold is the relative cycle change counted as a regression
	// or improvement.
	Threshold float64
}

// NewQuery returns the default query: wild selection, 3 drills, 12 heat
// rows, the paper's 8-cycle miss penalty, 10% threshold.
func NewQuery() Query {
	return Query{Bus: -1, Waits: -1, CacheKB: -1, Top: 3, Rows: 12, MissPenalty: 8, Threshold: 0.10}
}

// queryKeys is the grammar (kept in one place for the error message).
const queryKeys = "a, b, bench, bus, waits, cachekb, top, rows, misspenalty, threshold"

// ParseQuery parses the explain grammar: whitespace- or comma-separated
// key=value terms. Example:
//
//	a=D16/16/2 b=DLXe/32/3 bench=queens waits=2 top=2 rows=8
func ParseQuery(s string) (Query, error) {
	q := NewQuery()
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == ','
	})
	for _, term := range fields {
		k, v, ok := strings.Cut(term, "=")
		if !ok || v == "" {
			return q, fmt.Errorf("explain: bad term %q (want key=value)", term)
		}
		num := func() (int64, error) {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return 0, fmt.Errorf("explain: %s=%q: want a non-negative integer", k, v)
			}
			return n, nil
		}
		pos := func() (int, error) {
			n, err := num()
			if err == nil && n == 0 {
				return 0, fmt.Errorf("explain: %s=%q: want a positive integer", k, v)
			}
			return int(n), err
		}
		var err error
		switch strings.ToLower(k) {
		case "a":
			q.A = v
		case "b":
			q.B = v
		case "bench":
			q.Bench = v
		case "bus":
			q.Bus, err = num()
		case "waits":
			q.Waits, err = num()
		case "cachekb":
			q.CacheKB, err = num()
		case "top":
			q.Top, err = pos()
		case "rows":
			q.Rows, err = pos()
		case "misspenalty":
			q.MissPenalty, err = num()
		case "threshold":
			t, ferr := strconv.ParseFloat(v, 64)
			if ferr != nil || t <= 0 {
				err = fmt.Errorf("explain: threshold=%q: want a positive number", v)
			} else {
				q.Threshold = t
			}
		default:
			return q, fmt.Errorf("explain: unknown key %q (valid: %s)", k, queryKeys)
		}
		if err != nil {
			return q, err
		}
	}
	if q.A == "" || q.B == "" {
		return q, fmt.Errorf("explain: need both sides: a=<config|file.mcst> b=<config|file.mcst> (valid keys: %s)", queryKeys)
	}
	return q, nil
}

// filter returns the store filter of the query's selection terms.
func (q *Query) filter() store.Filter {
	f := store.NewFilter()
	f.Bench, f.BusBytes, f.WaitStates, f.CacheKB = q.Bench, q.Bus, q.Waits, q.CacheKB
	return f
}

// Side is one resolved surface: a single-config point set plus, when
// the config name maps to a known compiler configuration, the spec that
// lets the drill-down re-simulate its points.
type Side struct {
	Source string // as given in the query (config name or file path)
	Config string // the single configuration the points belong to
	Spec   *isa.Spec
	Points []store.Point
}

// ResolveSide materializes one side. A known configuration name is
// measured over the (filtered) benchmark suite via the lab — the same
// closed-form grid `repro -json` persists — anything else is read as a
// .mcst store file, which must reduce to one configuration under the
// query's selection.
func ResolveSide(lab *core.Lab, source string, q Query) (*Side, error) {
	if spec := core.ConfigByName(source); spec != nil {
		benches := bench.All()
		if q.Bench != "" {
			b := bench.ByName(q.Bench)
			if b == nil {
				return nil, fmt.Errorf("explain: unknown benchmark %q", q.Bench)
			}
			benches = []*bench.Benchmark{b}
		}
		f := q.filter()
		side := &Side{Source: source, Config: spec.Name, Spec: spec}
		for _, b := range benches {
			m, err := lab.Measure(b, spec)
			if err != nil {
				return nil, err
			}
			for _, p := range m.Points() {
				if f.Match(&p) {
					side.Points = append(side.Points, p)
				}
			}
		}
		if len(side.Points) == 0 {
			return nil, fmt.Errorf("explain: side %q matches no points under %q", source, f.String())
		}
		return side, nil
	}
	pts, err := store.ReadFile(source)
	if err != nil {
		return nil, fmt.Errorf("explain: side %q is neither a known config (%s) nor a readable store: %w",
			source, strings.Join(configNames(), ", "), err)
	}
	return SideFromPoints(source, pts, q)
}

// SideFromPoints builds a side from an in-memory point set (simd's
// a=store), canonicalizing and filtering it and requiring exactly one
// configuration to remain.
func SideFromPoints(source string, pts []store.Point, q Query) (*Side, error) {
	f := q.filter()
	var kept []store.Point
	for _, p := range store.Canon(pts) {
		if f.Match(&p) {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("explain: side %q matches no points under %q", source, f.String())
	}
	seen := map[string]bool{}
	var configs []string
	for i := range kept {
		if !seen[kept[i].Config] {
			seen[kept[i].Config] = true
			configs = append(configs, kept[i].Config)
		}
	}
	sort.Strings(configs)
	if len(configs) > 1 {
		return nil, fmt.Errorf("explain: side %q holds %d configs (%s); add config-selecting terms (bench/bus/waits/cachekb) or split the store",
			source, len(configs), strings.Join(configs, ", "))
	}
	return &Side{
		Source: source,
		Config: configs[0],
		Spec:   core.ConfigByName(configs[0]),
		Points: kept,
	}, nil
}

func configNames() []string {
	names := []string{"d16", "dlxe"}
	for _, s := range core.Configs() {
		names = append(names, s.Name)
	}
	return names
}

// PairKey identifies one cell across the two sides: the point key with
// the config dimension removed, which is exactly what makes
// config-vs-config comparison possible.
type PairKey struct {
	Bench      string `json:"bench"`
	BusBytes   int64  `json:"bus_bytes"`
	WaitStates int64  `json:"wait_states"`
	CacheKB    int64  `json:"cache_kb"`
}

// String renders the key in query-grammar form.
func (k PairKey) String() string {
	return fmt.Sprintf("bench=%s bus=%d waits=%d cachekb=%d",
		k.Bench, k.BusBytes, k.WaitStates, k.CacheKB)
}

func pairKeyOf(p *store.Point) PairKey {
	return PairKey{p.Bench, p.BusBytes, p.WaitStates, p.CacheKB}
}

// Delta is one paired cell's A→B movement (B relative to baseline A).
type Delta struct {
	PairKey
	CyclesA int64   `json:"cycles_a"`
	CyclesB int64   `json:"cycles_b"`
	Delta   int64   `json:"delta"`
	Rel     float64 `json:"rel"`
	// BucketDelta is per-cause movement indexed like Point.Buckets;
	// WorstBucket names the bucket that grew the most (empty when none
	// grew).
	BucketDelta [store.NumBuckets]int64 `json:"bucket_delta"`
	WorstBucket string                  `json:"worst_bucket,omitempty"`
}

// SideInfo summarizes one side in the report header.
type SideInfo struct {
	Source string `json:"source"`
	Config string `json:"config"`
	Points int    `json:"points"`
}

// Report is the full explain answer, JSON-marshalable and rendered as
// text by WriteText.
type Report struct {
	A         SideInfo  `json:"a"`
	B         SideInfo  `json:"b"`
	Matched   int       `json:"matched"`
	OnlyA     []PairKey `json:"only_a,omitempty"`
	OnlyB     []PairKey `json:"only_b,omitempty"`
	Threshold float64   `json:"threshold"`
	Regressed int       `json:"regressed"`
	Improved  int       `json:"improved"`
	Deltas    []Delta   `json:"deltas"`
	Drills    []Drill   `json:"drills,omitempty"`
	Notes     []string  `json:"notes,omitempty"`
}

// Run resolves both sides and produces the report.
func Run(lab *core.Lab, q Query) (*Report, error) {
	sa, err := ResolveSide(lab, q.A, q)
	if err != nil {
		return nil, err
	}
	sb, err := ResolveSide(lab, q.B, q)
	if err != nil {
		return nil, err
	}
	return RunSides(lab, q, sa, sb)
}

// RunSides pairs two resolved sides, ranks movers, and drills into the
// worst ones (when both sides map to re-simulable configurations).
func RunSides(lab *core.Lab, q Query, sa, sb *Side) (*Report, error) {
	rep := &Report{
		A:         SideInfo{sa.Source, sa.Config, len(sa.Points)},
		B:         SideInfo{sb.Source, sb.Config, len(sb.Points)},
		Threshold: q.Threshold,
	}

	bIdx := map[PairKey]int{}
	for i := range sb.Points {
		bIdx[pairKeyOf(&sb.Points[i])] = i
	}
	seenB := make([]bool, len(sb.Points))
	for i := range sa.Points {
		pa := &sa.Points[i]
		k := pairKeyOf(pa)
		j, ok := bIdx[k]
		if !ok {
			rep.OnlyA = append(rep.OnlyA, k)
			continue
		}
		seenB[j] = true
		pb := &sb.Points[j]
		rep.Matched++
		d := Delta{PairKey: k, CyclesA: pa.Cycles, CyclesB: pb.Cycles, Delta: pb.Cycles - pa.Cycles}
		if pa.Cycles != 0 {
			d.Rel = float64(d.Delta) / float64(pa.Cycles)
		}
		var worst int64
		for bk := 0; bk < store.NumBuckets; bk++ {
			bd := pb.Buckets[bk] - pa.Buckets[bk]
			d.BucketDelta[bk] = bd
			if bd > worst {
				worst = bd
				d.WorstBucket = store.BucketNames[bk]
			}
		}
		switch {
		case d.Rel > q.Threshold:
			rep.Regressed++
		case d.Rel < -q.Threshold:
			rep.Improved++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for j := range sb.Points {
		if !seenB[j] {
			rep.OnlyB = append(rep.OnlyB, pairKeyOf(&sb.Points[j]))
		}
	}
	sortKeys := func(ks []PairKey) {
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	}
	sortKeys(rep.OnlyA)
	sortKeys(rep.OnlyB)
	// Worst movers first: |Rel| descending, regressions before
	// equal-magnitude improvements, key as the tie-break (store.Diff's
	// ordering, so the two report layers agree).
	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		ai, aj := abs(rep.Deltas[i].Rel), abs(rep.Deltas[j].Rel)
		if ai != aj {
			return ai > aj
		}
		if rep.Deltas[i].Rel != rep.Deltas[j].Rel {
			return rep.Deltas[i].Rel > rep.Deltas[j].Rel
		}
		return rep.Deltas[i].PairKey.String() < rep.Deltas[j].PairKey.String()
	})

	if sa.Spec == nil || sb.Spec == nil {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("drill-down skipped: config %q or %q is not a known compiler configuration, so the movers cannot be re-simulated",
				sa.Config, sb.Config))
		return rep, nil
	}
	n := q.Top
	if n > len(rep.Deltas) {
		n = len(rep.Deltas)
	}
	if n > 0 {
		rep.Notes = append(rep.Notes,
			"drill cycles are engine-measured (port contention and latency overlap modeled) and may differ from the surface's closed-form cycles by design; see docs/EXPLAIN.md")
	}
	for i := 0; i < n; i++ {
		dr, err := drill(lab, q, sa, sb, rep.Deltas[i])
		if err != nil {
			return nil, err
		}
		rep.Drills = append(rep.Drills, *dr)
	}
	return rep, nil
}

// EngineSummary is one side's re-simulated totals for a drilled cell.
type EngineSummary struct {
	Config  string                     `json:"config"`
	Cycles  int64                      `json:"cycles"`
	CPI     float64                    `json:"cpi"`
	Buckets [pipeline.NumBuckets]int64 `json:"buckets"`
}

// HeatRow is one line of the per-PC stall heatmap: a program counter,
// its containing function, its charged cycles, the stall share and the
// dominant stall cause, plus a proportional bar for terminal reading.
type HeatRow struct {
	PC     string `json:"pc"`
	Sym    string `json:"sym"`
	Cycles int64  `json:"cycles"`
	Stall  int64  `json:"stall"`
	Cause  string `json:"cause"`
	Bar    string `json:"bar"`
}

// DisLine is one annotated disassembly line: address, rendered
// instruction, charged cycles, stall cycles and dominant stall cause.
type DisLine struct {
	Addr   string `json:"addr"`
	Asm    string `json:"asm"`
	Cycles int64  `json:"cycles"`
	Stall  int64  `json:"stall"`
	Cause  string `json:"cause,omitempty"`
}

// Drill is the full drill-down of one mover: both sides re-simulated
// with cycle-accounting engines, their stall heatmaps, and the
// stall-annotated disassembly of the hottest shared function.
type Drill struct {
	PairKey
	Func    string        `json:"func"`
	EngineA EngineSummary `json:"engine_a"`
	EngineB EngineSummary `json:"engine_b"`
	HeatA   []HeatRow     `json:"heat_a"`
	HeatB   []HeatRow     `json:"heat_b"`
	DisA    []DisLine     `json:"dis_a"`
	DisB    []DisLine     `json:"dis_b"`
}

// drill re-simulates one paired cell on both configurations and builds
// its heatmaps and annotated listings.
func drill(lab *core.Lab, q Query, sa, sb *Side, d Delta) (*Drill, error) {
	b := bench.ByName(d.Bench)
	if b == nil {
		return nil, fmt.Errorf("explain: mover references unknown benchmark %q", d.Bench)
	}
	ac := core.AccountConfig{BusBytes: uint32(d.BusBytes), WaitStates: d.WaitStates}
	if d.CacheKB > 0 {
		ac.CacheBytes = uint32(d.CacheKB) * 1024
		ac.MissPenalty = q.MissPenalty
		ac.WaitStates = 0 // cached interface replaces flat wait states
	}
	dr := &Drill{PairKey: d.PairKey}
	type sideRun struct {
		spec *isa.Spec
		run  *core.AccountRun
		img  *prog.Image
	}
	var runs [2]sideRun
	for i, s := range []*Side{sa, sb} {
		comp, err := lab.Compile(b, s.Spec)
		if err != nil {
			return nil, err
		}
		run, err := lab.Account(b, s.Spec, []core.AccountConfig{ac})
		if err != nil {
			return nil, err
		}
		runs[i] = sideRun{spec: s.Spec, run: run, img: comp.Image}
	}
	eA, eB := runs[0].run.Engines[0], runs[1].run.Engines[0]
	dr.EngineA = engineSummary(sa.Config, eA)
	dr.EngineB = engineSummary(sb.Config, eB)
	dr.HeatA = heatRows(eA, runs[0].run.Syms, q.Rows)
	dr.HeatB = heatRows(eB, runs[1].run.Syms, q.Rows)
	dr.Func = hottestShared(eA, runs[0].run.Syms, eB, runs[1].run.Syms)
	if dr.Func != "" {
		dr.DisA = disLines(runs[0].img, eA, dr.Func)
		dr.DisB = disLines(runs[1].img, eB, dr.Func)
	}
	return dr, nil
}

func engineSummary(config string, e *pipeline.Engine) EngineSummary {
	s := EngineSummary{Config: config, Cycles: e.Cycles(), CPI: e.CPI()}
	bd := e.Breakdown()
	for b := 0; b < pipeline.NumBuckets; b++ {
		s.Buckets[b] = bd[b]
	}
	return s
}

// stallOf splits one attribution row into (total, stall, dominant
// stall cause): stall is everything but the useful issue cycle.
func stallOf(bd pipeline.Breakdown) (total, stall int64, cause string) {
	total = bd.Sum()
	stall = total - bd[pipeline.BUseful]
	var worst int64
	for b := 0; b < pipeline.NumBuckets; b++ {
		if b == int(pipeline.BUseful) {
			continue
		}
		if bd[b] > worst {
			worst = bd[b]
			cause = pipeline.Bucket(b).String()
		}
	}
	return total, stall, cause
}

// heatRows ranks the engine's per-PC rows by stall cycles and renders
// the top rows as the heatmap (bar lengths proportional to the worst
// row).
func heatRows(e *pipeline.Engine, st *sim.SymTable, rows int) []HeatRow {
	type hr struct {
		pc           uint32
		total, stall int64
		cause        string
	}
	var all []hr
	for _, row := range e.PerPC() {
		total, stall, cause := stallOf(row.Buckets)
		if stall > 0 {
			all = append(all, hr{row.PC, total, stall, cause})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].stall != all[j].stall {
			return all[i].stall > all[j].stall
		}
		return all[i].pc < all[j].pc
	})
	if len(all) > rows {
		all = all[:rows]
	}
	var out []HeatRow
	var max int64
	if len(all) > 0 {
		max = all[0].stall
	}
	for _, h := range all {
		width := int(20 * h.stall / max)
		if width < 1 {
			width = 1
		}
		out = append(out, HeatRow{
			PC:     fmt.Sprintf("%#06x", h.pc),
			Sym:    st.Lookup(h.pc),
			Cycles: h.total,
			Stall:  h.stall,
			Cause:  h.cause,
			Bar:    strings.Repeat("#", width),
		})
	}
	return out
}

// hottestShared picks the function to disassemble: the one with the
// largest combined cycle total across both sides, preferring functions
// present on both (ties by name).
func hottestShared(eA *pipeline.Engine, stA *sim.SymTable, eB *pipeline.Engine, stB *sim.SymTable) string {
	cycles := map[string]int64{}
	shared := map[string]int{}
	var names []string
	for _, side := range [][]pipeline.FuncAccount{eA.PerFunc(stA), eB.PerFunc(stB)} {
		for _, fa := range side {
			if _, ok := cycles[fa.Name]; !ok {
				names = append(names, fa.Name)
			}
			cycles[fa.Name] += fa.Cycles
			shared[fa.Name]++
		}
	}
	sort.Strings(names)
	best := ""
	for _, n := range names {
		if n == "?" {
			continue
		}
		if best == "" {
			best = n
			continue
		}
		bn, bb := shared[n] == 2, shared[best] == 2
		switch {
		case bn != bb:
			if bn {
				best = n
			}
		case cycles[n] > cycles[best]:
			best = n
		}
	}
	return best
}

// maxDisLines caps a listing so one huge function cannot flood the
// report; the tail is summarized in one line.
const maxDisLines = 48

// disLines renders the named function's annotated disassembly for one
// side: every instruction in the function's symbol range with its
// charged cycles, stall cycles and dominant stall cause.
func disLines(img *prog.Image, e *pipeline.Engine, name string) []DisLine {
	start, end, ok := funcRange(img, name)
	if !ok {
		return []DisLine{{Asm: fmt.Sprintf("; %s: no such symbol on this side", name)}}
	}
	rows := map[uint32]pipeline.Breakdown{}
	for _, row := range e.PerPC() {
		rows[row.PC] = row.Buckets
	}
	var out []DisLine
	skipped := 0
	for _, ent := range dis.Text(img) {
		if ent.Addr < start || ent.Addr >= end {
			continue
		}
		if len(out) >= maxDisLines {
			skipped++
			continue
		}
		line := DisLine{Addr: fmt.Sprintf("%#06x", ent.Addr)}
		if ent.Err != nil {
			line.Asm = fmt.Sprintf(".word %#x", ent.Raw)
		} else {
			line.Asm = ent.In.String()
		}
		total, stall, cause := stallOf(rows[ent.Addr])
		line.Cycles, line.Stall, line.Cause = total, stall, cause
		out = append(out, line)
	}
	if skipped > 0 {
		out = append(out, DisLine{Asm: fmt.Sprintf("; ... %d more instructions", skipped)})
	}
	return out
}

// funcRange computes [start, end) of a text symbol from the image's
// symbol map: end is the next non-dot text symbol (the same symbols
// sim.SymTable indexes) or the end of text.
func funcRange(img *prog.Image, name string) (start, end uint32, ok bool) {
	start, ok = img.Symbols[name]
	if !ok || start < isa.TextBase || start >= img.TextEnd() {
		return 0, 0, false
	}
	end = img.TextEnd()
	var names []string
	for n := range img.Symbols { //detlint:ignore rangemap sorted immediately below
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := img.Symbols[n]
		if strings.HasPrefix(n, ".") || a < isa.TextBase || a >= img.TextEnd() {
			continue
		}
		if a > start && a < end {
			end = a
		}
	}
	return start, end, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
