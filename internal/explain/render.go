package explain

import (
	"fmt"
	"io"

	"repro/internal/pipeline"
)

// WriteText renders the report for terminals: the paired-surface diff,
// the ranked movers, then per-drill engine totals, stall heatmaps and
// annotated disassembly. The output is deterministic for a given
// report (no wall-clock, no map iteration), which is what lets make's
// explain-smoke compare runs byte for byte.
func (r *Report) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("explain — B relative to baseline A\n")
	p("  A: %s (source %s, %d points)\n", r.A.Config, r.A.Source, r.A.Points)
	p("  B: %s (source %s, %d points)\n", r.B.Config, r.B.Source, r.B.Points)
	p("matched %d cells; %d regressed, %d improved (threshold ±%.1f%%)\n",
		r.Matched, r.Regressed, r.Improved, 100*r.Threshold)
	for _, k := range r.OnlyA {
		p("only in A: %s\n", k)
	}
	for _, k := range r.OnlyB {
		p("only in B: %s\n", k)
	}
	for _, n := range r.Notes {
		p("note: %s\n", n)
	}
	p("\n")

	p("worst movers:\n")
	p("  %-12s %4s %6s %8s %12s %12s %12s %8s  %s\n",
		"bench", "bus", "waits", "cachekb", "cycles A", "cycles B", "delta", "rel", "worst bucket")
	for _, d := range r.Deltas {
		p("  %-12s %4d %6d %8d %12d %12d %+12d %+7.1f%%  %s\n",
			d.Bench, d.BusBytes, d.WaitStates, d.CacheKB,
			d.CyclesA, d.CyclesB, d.Delta, 100*d.Rel, d.WorstBucket)
	}
	p("\n")

	for i := range r.Drills {
		dr := &r.Drills[i]
		p("== drill: %s ==\n", dr.PairKey)
		p("engine totals: A %s %d cycles (CPI %.2f) | B %s %d cycles (CPI %.2f)\n",
			dr.EngineA.Config, dr.EngineA.Cycles, dr.EngineA.CPI,
			dr.EngineB.Config, dr.EngineB.Cycles, dr.EngineB.CPI)
		p("engine buckets (A -> B):\n")
		for b := 0; b < pipeline.NumBuckets; b++ {
			av, bv := dr.EngineA.Buckets[b], dr.EngineB.Buckets[b]
			if av == 0 && bv == 0 {
				continue
			}
			p("  %-16s %12d -> %12d  (%+d)\n", pipeline.Bucket(b).String(), av, bv, bv-av)
		}
		writeHeat(p, "A", dr.EngineA.Config, dr.HeatA)
		writeHeat(p, "B", dr.EngineB.Config, dr.HeatB)
		if dr.Func != "" {
			writeDis(p, dr.Func, "A", dr.EngineA.Config, dr.DisA)
			writeDis(p, dr.Func, "B", dr.EngineB.Config, dr.DisB)
		}
		p("\n")
	}
	return err
}

func writeHeat(p func(string, ...any), side, config string, rows []HeatRow) {
	p("stall heatmap — %s (%s), top PCs by stall:\n", side, config)
	if len(rows) == 0 {
		p("  (no stall cycles charged)\n")
		return
	}
	p("  %-8s %-16s %10s %10s %-16s %s\n", "pc", "func", "cycles", "stall", "cause", "")
	for _, h := range rows {
		p("  %-8s %-16s %10d %10d %-16s %s\n", h.PC, h.Sym, h.Cycles, h.Stall, h.Cause, h.Bar)
	}
}

func writeDis(p func(string, ...any), fn, side, config string, lines []DisLine) {
	p("annotated disassembly — %s — %s (%s):\n", fn, side, config)
	for _, l := range lines {
		if l.Addr == "" {
			p("  %s\n", l.Asm)
			continue
		}
		cause := l.Cause
		if l.Stall == 0 {
			cause = ""
		}
		p("  %-8s %-28s %10d %8d  %s\n", l.Addr, l.Asm, l.Cycles, l.Stall, cause)
	}
}
