package prog

import (
	"sort"
	"strings"

	"repro/internal/isa"
)

// SymTable maps text addresses to the function symbols that contain
// them. It is the symbol machinery shared by the instruction profiler
// (sim.Profile) and the pipeline cycle accountant: assembler- and
// compiler-internal labels (any dot-prefixed name: ".L..." block and
// far-branch labels, ".pool"-style literal markers) are excluded, and
// ties between symbols at one address are broken by name so lookups are
// byte-stable across runs.
type SymTable struct {
	names  []string
	starts []uint32
}

// NewSymTable builds the lookup table over an image's text symbols.
func NewSymTable(img *Image) *SymTable {
	t := &SymTable{}
	type sym struct {
		name string
		addr uint32
	}
	var syms []sym
	for name, addr := range img.Symbols { //detlint:ignore rangemap sorted immediately below

		if addr >= isa.TextBase && addr < img.TextEnd() && !strings.HasPrefix(name, ".") {
			syms = append(syms, sym{name, addr})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})
	for _, s := range syms {
		t.names = append(t.names, s.name)
		t.starts = append(t.starts, s.addr)
	}
	return t
}

// Len returns the number of symbols.
func (t *SymTable) Len() int { return len(t.names) }

// Index returns the index of the symbol containing pc, or -1 when pc is
// below the first symbol.
func (t *SymTable) Index(pc uint32) int {
	return sort.Search(len(t.starts), func(i int) bool { return t.starts[i] > pc }) - 1
}

// Name returns the i'th symbol name, or "?" for out-of-range indices
// (the conventional label for unattributable addresses).
func (t *SymTable) Name(i int) string {
	if i < 0 || i >= len(t.names) {
		return "?"
	}
	return t.names[i]
}

// Lookup returns the name of the symbol containing pc ("?" when none).
func (t *SymTable) Lookup(pc uint32) string { return t.Name(t.Index(pc)) }
