// Package prog defines the linked program image produced by the assembler
// and consumed by the simulator: a text segment, a data segment, a symbol
// table and an entry point.
//
// The image's Size is the paper's static code-size metric: "the number of
// bytes in the stripped binary executable file, including both text and
// data segments".
package prog

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Range is a half-open [Start, End) span of text-segment addresses that
// holds no instructions: literal-pool words, alignment padding, and data
// directives placed in .text. The verifier skips these when decoding and
// rejects control transfers into them.
type Range struct {
	Start uint32
	End   uint32
}

// Image is a linked, loadable program.
type Image struct {
	// Enc is the instruction encoding of the text segment.
	Enc isa.Encoding
	// Cmp8 marks the D16+ encoding variant (8-bit move immediate plus
	// 8-bit compare-equal immediate); see isa.D16Plus.
	Cmp8 bool
	// Text holds the instruction bytes, loaded at isa.TextBase.
	Text []byte
	// Data holds the initialized data bytes, loaded at isa.DataBase.
	Data []byte
	// BSS is the size in bytes of zero-initialized data following Data.
	BSS uint32
	// Entry is the address execution starts at.
	Entry uint32
	// Symbols maps defined global labels to their absolute addresses.
	Symbols map[string]uint32

	// TextInstrs is the number of instructions in the text segment,
	// excluding literal-pool words (the static instruction count).
	TextInstrs int
	// PoolBytes is the number of literal-pool bytes embedded in text.
	PoolBytes int

	// NonCode lists text-segment byte ranges holding no instructions
	// (literal pools, alignment padding, in-text data), sorted by Start
	// with adjacent ranges merged.
	NonCode []Range
}

// AddNonCode records [start, end) as a non-instruction text range,
// keeping NonCode sorted and merged. Ranges are appended in address
// order by the assembler, so the common case is a constant-time merge
// with the last range.
func (im *Image) AddNonCode(start, end uint32) {
	if end <= start {
		return
	}
	if n := len(im.NonCode); n > 0 && im.NonCode[n-1].End >= start && im.NonCode[n-1].Start <= start {
		if end > im.NonCode[n-1].End {
			im.NonCode[n-1].End = end
		}
		return
	}
	im.NonCode = append(im.NonCode, Range{Start: start, End: end})
	//detlint:ignore sortslice ranges are disjoint, so starts are unique
	sort.Slice(im.NonCode, func(i, j int) bool { return im.NonCode[i].Start < im.NonCode[j].Start })
}

// InNonCode reports whether addr falls inside a recorded non-code range.
func (im *Image) InNonCode(addr uint32) bool {
	i := sort.Search(len(im.NonCode), func(i int) bool { return im.NonCode[i].End > addr })
	return i < len(im.NonCode) && im.NonCode[i].Start <= addr
}

// Size returns the stripped binary size in bytes (text + initialized
// data), the paper's code-density measure.
func (im *Image) Size() int { return len(im.Text) + len(im.Data) }

// TextEnd returns the first address past the text segment.
func (im *Image) TextEnd() uint32 { return isa.TextBase + uint32(len(im.Text)) }

// DataEnd returns the first address past initialized data and BSS.
func (im *Image) DataEnd() uint32 {
	return isa.DataBase + uint32(len(im.Data)) + im.BSS
}

// Load copies the image into a flat memory whose index 0 corresponds to
// physical address 0. It returns an error if the image does not fit.
func (im *Image) Load(mem []byte) error {
	if im.TextEnd() > uint32(len(mem)) || im.DataEnd() > uint32(len(mem)) {
		return fmt.Errorf("prog: image (text end %#x, data end %#x) exceeds memory size %#x",
			im.TextEnd(), im.DataEnd(), len(mem))
	}
	copy(mem[isa.TextBase:], im.Text)
	copy(mem[isa.DataBase:], im.Data)
	for i := uint32(0); i < im.BSS; i++ {
		mem[isa.DataBase+uint32(len(im.Data))+i] = 0
	}
	return nil
}

// Lookup returns the address of a symbol.
func (im *Image) Lookup(name string) (uint32, bool) {
	a, ok := im.Symbols[name]
	return a, ok
}

// SymbolNames returns all symbol names in address order (for listings and
// profiling).
func (im *Image) SymbolNames() []string {
	names := make([]string, 0, len(im.Symbols))
	for n := range im.Symbols { //detlint:ignore rangemap sorted immediately below
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ai, aj := im.Symbols[names[i]], im.Symbols[names[j]]
		if ai != aj {
			return ai < aj
		}
		return names[i] < names[j]
	})
	return names
}

// SymbolAt returns the name of the closest symbol at or below addr within
// the text segment, for trace annotation. Ties between symbols at the
// same address break toward the lexicographically smallest name, so the
// annotation never depends on map iteration order.
func (im *Image) SymbolAt(addr uint32) string {
	best, bestAddr := "", uint32(0)
	for n, a := range im.Symbols { //detlint:ignore rangemap max with deterministic name tie-break, order-independent
		if a > addr || a < isa.TextBase || a >= im.TextEnd() {
			continue
		}
		if best == "" || a > bestAddr || (a == bestAddr && n < best) {
			best, bestAddr = n, a
		}
	}
	return best
}
