package prog

import (
	"testing"

	"repro/internal/isa"
)

func testImage() *Image {
	return &Image{
		Enc:   isa.EncD16,
		Text:  []byte{0x12, 0x34, 0x56, 0x78},
		Data:  []byte{1, 2, 3},
		BSS:   16,
		Entry: isa.TextBase,
		Symbols: map[string]uint32{
			"_start": isa.TextBase,
			"f":      isa.TextBase + 2,
			"g":      isa.DataBase,
		},
	}
}

func TestSizeExcludesBSS(t *testing.T) {
	im := testImage()
	if im.Size() != 7 {
		t.Errorf("Size = %d, want 7 (text 4 + data 3, bss excluded)", im.Size())
	}
}

func TestSegmentBounds(t *testing.T) {
	im := testImage()
	if im.TextEnd() != isa.TextBase+4 {
		t.Error("TextEnd wrong")
	}
	if im.DataEnd() != isa.DataBase+3+16 {
		t.Error("DataEnd must include BSS")
	}
}

func TestLoad(t *testing.T) {
	im := testImage()
	mem := make([]byte, isa.MemSize)
	mem[isa.DataBase+5] = 0xFF // must be zeroed (bss range)
	if err := im.Load(mem); err != nil {
		t.Fatal(err)
	}
	if mem[isa.TextBase] != 0x12 || mem[isa.DataBase+2] != 3 {
		t.Error("segments not loaded")
	}
	if mem[isa.DataBase+5] != 0 {
		t.Error("bss not zeroed")
	}
}

func TestLoadRejectsTinyMemory(t *testing.T) {
	im := testImage()
	if err := im.Load(make([]byte, 64)); err == nil {
		t.Fatal("expected out-of-memory error")
	}
}

func TestSymbols(t *testing.T) {
	im := testImage()
	if a, ok := im.Lookup("f"); !ok || a != isa.TextBase+2 {
		t.Error("Lookup wrong")
	}
	if _, ok := im.Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
	names := im.SymbolNames()
	if len(names) != 3 || names[0] != "_start" || names[1] != "f" || names[2] != "g" {
		t.Errorf("SymbolNames order %v", names)
	}
	if im.SymbolAt(isa.TextBase+3) != "f" {
		t.Errorf("SymbolAt = %q, want f", im.SymbolAt(isa.TextBase+3))
	}
	if im.SymbolAt(isa.TextBase+1) != "_start" {
		t.Error("SymbolAt below f should be _start")
	}
}
