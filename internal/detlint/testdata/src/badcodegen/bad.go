// Package badcodegen is a detlint test fixture: the full catalogue of
// determinism hazards in what the test declares to be a codegen-path
// package. Every construct here must be flagged.
package badcodegen

import (
	"maps"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Emit orders its output by map iteration — the bug detlint exists to
// catch in a code-generation path.
func Emit(regs map[string]int) []string {
	var out []string
	for name := range regs {
		out = append(out, name)
	}
	return out
}

// Keys consumes maps.Keys without an immediate slices.Sorted.
func Keys(m map[string]int) []string {
	return slices.Collect(maps.Keys(m))
}

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter pulls from the global math/rand state.
func Jitter() int { return rand.Intn(8) }

// Row is sort fodder for Rank.
type Row struct {
	Name   string
	Cycles int
}

// Rank sorts on a single projected key with the unstable sort: distinct
// rows with equal Cycles keep no fixed order.
func Rank(rows []Row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cycles < rows[j].Cycles })
}
