// Package cleancodegen is a detlint test fixture: map consumption done
// the sanctioned ways. Nothing here may be flagged even under the
// codegen-path rule set.
package cleancodegen

import (
	"maps"
	"slices"
)

// Sorted uses the sanctioned maps.Keys → slices.Sorted pipeline.
func Sorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// Copy iterates a map with an escape hatch naming the check and reason.
func Copy(dst, src map[string]int) {
	for k, v := range src { //detlint:ignore rangemap map-to-map copy, order-free
		dst[k] = v
	}
}

// CollectSort collects then sorts, suppressed on the preceding line.
func CollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//detlint:ignore rangemap sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
