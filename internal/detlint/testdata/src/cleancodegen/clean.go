// Package cleancodegen is a detlint test fixture: map consumption done
// the sanctioned ways. Nothing here may be flagged even under the
// codegen-path rule set.
package cleancodegen

import (
	"maps"
	"slices"
	"sort"
)

// Sorted uses the sanctioned maps.Keys → slices.Sorted pipeline.
func Sorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// Copy iterates a map with an escape hatch naming the check and reason.
func Copy(dst, src map[string]int) {
	for k, v := range src { //detlint:ignore rangemap map-to-map copy, order-free
		dst[k] = v
	}
}

// CollectSort collects then sorts, suppressed on the preceding line.
func CollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//detlint:ignore rangemap sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Row is sort fodder for the comparator shapes below.
type Row struct {
	Name   string
	Cycles int
}

// StableRank uses the stable sort: equal keys keep insertion order.
func StableRank(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Cycles < rows[j].Cycles })
}

// TiebreakRank breaks key ties on a second field.
func TiebreakRank(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles < rows[j].Cycles
		}
		return rows[i].Name < rows[j].Name
	})
}

// DirectSort compares whole elements: ties mean identical values, so
// their relative order is unobservable.
func DirectSort(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// DelegatedSort hands comparison to a named function; the pass cannot
// see inside it and stays silent.
func DelegatedSort(rows []Row, less func(a, b *Row) bool) {
	sort.Slice(rows, func(i, j int) bool { return less(&rows[i], &rows[j]) })
}

// UniqueKeyRank sorts on a key the caller guarantees distinct, with the
// escape hatch naming the check and reason.
func UniqueKeyRank(rows []Row) {
	//detlint:ignore sortslice names are unique per table
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
}
