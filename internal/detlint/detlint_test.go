package detlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// lintFixture lints one testdata package under a synthetic import path
// so the test controls which rule set applies.
func lintFixture(t *testing.T, dir, pkgPath string) []Finding {
	t.Helper()
	fs, err := LintDir(filepath.Join("testdata", "src", dir), pkgPath)
	if err != nil {
		t.Fatalf("LintDir(%s as %s): %v", dir, pkgPath, err)
	}
	return fs
}

func hasFinding(fs []Finding, check, fileSuffix string, line int) bool {
	for _, f := range fs {
		if f.Check == check && f.Pos.Line == line && strings.HasSuffix(f.Pos.Filename, fileSuffix) {
			return true
		}
	}
	return false
}

// TestBadFixtureFlagged is the acceptance case: a fixture with an
// unsorted map iteration (and friends) in a codegen path must fail.
func TestBadFixtureFlagged(t *testing.T) {
	fs := lintFixture(t, "badcodegen", "repro/internal/mcc")
	want := []struct {
		check string
		line  int
	}{
		{CheckMathRand, 8},   // math/rand import
		{CheckRangeMap, 18},  // for name := range regs
		{CheckMapsKeys, 26},  // slices.Collect(maps.Keys(m))
		{CheckTimeNow, 30},   // time.Now()
		{CheckSortSlice, 44}, // sort.Slice on rows[i].Cycles alone
	}
	for _, w := range want {
		if !hasFinding(fs, w.check, "bad.go", w.line) {
			t.Errorf("missing %s finding at bad.go:%d; got %v", w.check, w.line, fs)
		}
	}
	if len(fs) != len(want) {
		t.Errorf("got %d findings, want %d: %v", len(fs), len(want), fs)
	}
}

// TestCleanFixtureUnflagged: sanctioned patterns and escape hatches
// produce no findings even under the strictest rule set.
func TestCleanFixtureUnflagged(t *testing.T) {
	if fs := lintFixture(t, "cleancodegen", "repro/internal/mcc"); len(fs) != 0 {
		t.Errorf("clean fixture flagged: %v", fs)
	}
}

// TestOutOfScopeUnflagged: the same hazardous code outside the
// deterministic-output package list is none of detlint's business.
func TestOutOfScopeUnflagged(t *testing.T) {
	for _, pkg := range []string{"repro/internal/telemetry", "repro/cmd/mcrun", "other/module/pkg"} {
		if fs := lintFixture(t, "badcodegen", pkg); len(fs) != 0 {
			t.Errorf("out-of-scope package %s flagged: %v", pkg, fs)
		}
	}
}

// TestJobsTimeExempt: internal/jobs keeps rangemap/mathrand but is
// allowed wall-clock reads (scheduler timeouts).
func TestJobsTimeExempt(t *testing.T) {
	fs := lintFixture(t, "badcodegen", "repro/internal/jobs")
	if hasFinding(fs, CheckTimeNow, "bad.go", 30) {
		t.Errorf("timenow flagged in time-exempt package: %v", fs)
	}
	if !hasFinding(fs, CheckRangeMap, "bad.go", 18) {
		t.Errorf("rangemap not flagged in time-exempt package: %v", fs)
	}
}

func TestChecksFor(t *testing.T) {
	if cs := ChecksFor("repro/internal/telemetry"); cs != nil {
		t.Errorf("telemetry should be unscoped, got %v", cs)
	}
	cs := ChecksFor("repro/internal/mcc")
	for _, c := range []string{CheckRangeMap, CheckMapsKeys, CheckMathRand, CheckTimeNow, CheckSortSlice} {
		if !cs[c] {
			t.Errorf("mcc missing check %s", c)
		}
	}
	if ChecksFor("repro/internal/jobs")[CheckTimeNow] {
		t.Error("jobs should be exempt from timenow")
	}
}

// TestModuleClean lints the real module: the shipped tree must carry no
// findings (real hazards fixed, benign sites annotated).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	fs, err := LintModule("../..")
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, f := range fs {
		t.Errorf("module finding: %s", f)
	}
}
