// Package detlint is the repo's determinism linter: a static pass that
// enforces the ROADMAP's byte-identical-output guarantee at build time
// instead of hoping the runtime diff in `make check` catches a
// regression.
//
// Checks (see docs/VERIFY.md for the policy rationale):
//
//   - rangemap:  no `range` over a map in packages that feed
//     deterministic output — iteration order varies run to run;
//   - mapskeys:  no maps.Keys/maps.Values in those packages unless the
//     iterator feeds slices.Sorted directly;
//   - timenow:   no time.Now/time.Since in those packages outside
//     telemetry instrumentation;
//   - mathrand:  no math/rand at all in those packages (unseeded global
//     state; seeded determinism is still a trap under parallelism);
//   - sortslice: no sort.Slice whose comparator is a single projected
//     key — distinct elements with equal keys keep no stable order, so
//     the sorted bytes vary run to run; use sort.SliceStable or add a
//     tiebreak.
//
// A finding is suppressed by an escape hatch on the same or preceding
// line naming the check and a reason:
//
//	//detlint:ignore rangemap keys are sorted two lines down
//
// The linter is built on the standard library's go/parser and go/types
// (with the "source" importer), not golang.org/x/tools, so it runs in
// hermetic environments with an empty module cache.
package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// Check identifiers.
const (
	CheckRangeMap  = "rangemap"
	CheckMapsKeys  = "mapskeys"
	CheckTimeNow   = "timenow"
	CheckMathRand  = "mathrand"
	CheckSortSlice = "sortslice"
)

// detPkgs lists the import-path suffixes of packages whose output must
// be byte-identical across runs: the compiler and assembler (generated
// code), the simulator and pipeline model (measurements), the encoders
// and disassembler, the lab/experiment layer (tables), the jobs
// content-key paths, and the columnar measurement store (files).
// rangemap/mapskeys/mathrand apply here.
var detPkgs = []string{
	"internal/mcc", "internal/asm", "internal/sim", "internal/pipeline",
	"internal/core", "internal/experiments", "internal/jobs",
	"internal/isa", "internal/d16", "internal/dlxe", "internal/prog",
	"internal/dis", "internal/bench", "internal/cache", "internal/memsys",
	"internal/verify", "internal/store", "internal/synth", "internal/sweep",
	"internal/static",
}

// timeExemptPkgs are deterministic-output packages where wall-clock
// reads are nonetheless legitimate: the jobs scheduler times out and
// retries on real time (none of which feeds result bytes).
var timeExemptPkgs = []string{"internal/jobs"}

func hasSuffixPkg(pkgPath string, list []string) bool {
	for _, s := range list {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// ChecksFor returns the set of checks that apply to a package.
func ChecksFor(pkgPath string) map[string]bool {
	if !hasSuffixPkg(pkgPath, detPkgs) {
		return nil
	}
	cs := map[string]bool{CheckRangeMap: true, CheckMapsKeys: true, CheckMathRand: true, CheckSortSlice: true}
	if !hasSuffixPkg(pkgPath, timeExemptPkgs) {
		cs[CheckTimeNow] = true
	}
	return cs
}

// LintDir parses, type-checks and lints one package directory.
// pkgPath decides which checks apply (it is the package's import path;
// tests pass synthetic paths to force rules on or off). Test files are
// not linted: only shipped code feeds deterministic output.
func LintDir(dir, pkgPath string) ([]Finding, error) {
	checks := ChecksFor(pkgPath)
	if len(checks) == 0 {
		return nil, nil
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var names []string
	for name := range pkgs { //detlint:ignore rangemap sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	var all []Finding
	for _, name := range names {
		pkg := pkgs[name]
		var files []*ast.File
		var fnames []string
		for fname := range pkg.Files { //detlint:ignore rangemap sorted immediately below
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		for _, fname := range fnames {
			files = append(files, pkg.Files[fname])
		}
		info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}, Uses: map[*ast.Ident]types.Object{}}
		conf := types.Config{
			Importer: importer.ForCompiler(fset, "source", nil),
			Error:    func(error) {}, // collect what we can; parse errors surface via go build
		}
		conf.Check(pkgPath, fset, files, info)
		for _, f := range files {
			all = append(all, lintFile(fset, f, info, checks)...)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Check < all[j].Check
	})
	return all, nil
}

// LintModule walks a module root and lints every package directory,
// deciding import paths from go.mod. testdata and hidden directories
// are skipped.
func LintModule(root string) ([]Finding, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		fs, err := LintDir(dir, pkgPath)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		all = append(all, fs...)
	}
	return all, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// lintFile runs the enabled checks over one file.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info, checks map[string]bool) []Finding {
	ig := collectIgnores(fset, f)
	var out []Finding
	report := func(pos token.Pos, check, msg string) {
		p := fset.Position(pos)
		if ig.suppressed(p.Line, check) {
			return
		}
		out = append(out, Finding{Pos: p, Check: check, Msg: msg})
	}

	// Import-level checks.
	pkgNames := map[string]string{} // local name -> import path
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		pkgNames[name] = path
		if checks[CheckMathRand] && (path == "math/rand" || path == "math/rand/v2") {
			report(imp.Pos(), CheckMathRand,
				"math/rand in a deterministic-output package (unseeded global state)")
		}
	}
	isPkgCall := func(e ast.Expr, path, fn string) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != fn {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && pkgNames[id.Name] == path
	}

	// parent links for the mapskeys sorted-wrapper exemption.
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)

		switch n := n.(type) {
		case *ast.RangeStmt:
			if checks[CheckRangeMap] && isMapType(info, n.X) {
				report(n.Pos(), CheckRangeMap,
					"range over a map in a deterministic-output package (iteration order varies; collect and sort keys instead)")
			}
		case *ast.CallExpr:
			if checks[CheckMapsKeys] &&
				(isPkgCall(n.Fun, "maps", "Keys") || isPkgCall(n.Fun, "maps", "Values") ||
					isPkgCall(n.Fun, "golang.org/x/exp/maps", "Keys") || isPkgCall(n.Fun, "golang.org/x/exp/maps", "Values")) {
				if !feedsSorted(parent, n, pkgNames) {
					report(n.Pos(), CheckMapsKeys,
						"maps.Keys/Values without an immediate slices.Sorted in a deterministic-output package")
				}
			}
			if checks[CheckTimeNow] &&
				(isPkgCall(n.Fun, "time", "Now") || isPkgCall(n.Fun, "time", "Since")) {
				report(n.Pos(), CheckTimeNow,
					"wall-clock read in a deterministic-output package (keep timing in telemetry)")
			}
			if checks[CheckSortSlice] && isPkgCall(n.Fun, "sort", "Slice") && len(n.Args) == 2 {
				if lit, ok := n.Args[1].(*ast.FuncLit); ok && singleKeyComparator(lit) {
					report(n.Pos(), CheckSortSlice,
						"sort.Slice on a single projected key in a deterministic-output package (equal keys keep no stable order; use sort.SliceStable or add a tiebreak)")
				}
			}
		}
		return true
	})
	return out
}

// singleKeyComparator reports whether a sort.Slice comparator is a
// single `return a < b`-style comparison of one key projected off each
// indexed element — the shape where equal keys on distinct elements
// leave the final order up to the (unstable) sort. Anything it cannot
// see through is exempt: multi-statement bodies carry their own
// tiebreaks, a lone call delegates to a comparator this pass cannot
// inspect, and direct element compares (`s[i] < s[j]`) only tie when
// the elements are identical, where order is unobservable.
func singleKeyComparator(lit *ast.FuncLit) bool {
	if len(lit.Body.List) != 1 {
		return false
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	cmp, ok := ret.Results[0].(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	return projectsKey(cmp.X) && projectsKey(cmp.Y)
}

// projectsKey reports whether e selects a field off an indexed element
// (`s[i].F`, possibly through nested selectors).
func projectsKey(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x := sel.X
	for {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			return true
		default:
			return false
		}
	}
}

// feedsSorted reports whether call is the direct argument of a
// slices.Sorted* call — the sanctioned way to consume maps.Keys.
func feedsSorted(parent map[ast.Node]ast.Node, call *ast.CallExpr, pkgNames map[string]string) bool {
	p, ok := parent[call].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := p.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Sorted") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pkgNames[id.Name] == "slices"
}

// isMapType reports whether e's type is (or has an underlying) map.
// With a partially failed type check the type may be missing; the check
// errs toward silence then — `go build` will be failing anyway.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// ignores records //detlint:ignore directives by line.
type ignores map[int]map[string]bool

func (ig ignores) suppressed(line int, check string) bool {
	return ig[line][check] || ig[line-1][check]
}

func collectIgnores(fset *token.FileSet, f *ast.File) ignores {
	ig := ignores{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//detlint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				continue // a bare ignore without check name + reason is inert
			}
			line := fset.Position(c.Pos()).Line
			if ig[line] == nil {
				ig[line] = map[string]bool{}
			}
			ig[line][fields[0]] = true
		}
	}
	return ig
}
