package isa

import (
	"fmt"
	"strings"
)

// Instr is one decoded machine instruction in the canonical three-address
// form. Encoders map it onto a concrete 16- or 32-bit word (collapsing
// Rd==Rs1 for two-address D16 operations); decoders reconstruct it.
//
// Field usage by operation class:
//
//	loads/stores:  Rd = data register, Rs1 = base register, Imm = byte
//	               displacement (LDC: Imm = PC-relative byte displacement,
//	               Rd = r0, Rs1 = NoReg)
//	branches:      Rs1 = tested register (BZ/BNZ), Imm = byte displacement
//	               from the branch's own address
//	jumps:         Rs1 = target-address register, or HasImm with Imm = the
//	               absolute target (DLXe J-type)
//	cmp:           Cond set; Rd = destination (r0 on D16), Rs1/Rs2 operands,
//	               or HasImm with Imm as right operand (DLXe)
//	ALU:           Rd = destination, Rs1/Rs2 sources; immediate forms use
//	               Rs1 + Imm
//	mvi/mvhi:      Rd + Imm
//	trap:          Imm = trap code, Rs1 = optional argument register
type Instr struct {
	Op     Op
	Cond   Cond
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int32
	HasImm bool
}

// MakeNop returns the canonical no-operation instruction.
func MakeNop() Instr { return Instr{Op: NOP} }

// Uses returns the registers the instruction reads, appended to dst
// (which may be nil). The CC register r0 is included where the operation
// implicitly reads it (D16-style bz/bnz record Rs1 = r0 explicitly, so no
// extra handling is needed here).
func (in Instr) Uses(dst []Reg) []Reg {
	add := func(r Reg) {
		if r.Valid() {
			dst = append(dst, r)
		}
	}
	switch {
	case in.Op.IsStore():
		add(in.Rd) // stored value
		add(in.Rs1)
	case in.Op.IsLoad():
		add(in.Rs1)
	case in.Op == MVI || in.Op == MVHI || in.Op == NOP || in.Op == LDC:
		// no register sources (MVHI on DLXe replaces the low half with
		// zeros in this reproduction's semantics; see dlxe package)
	default:
		add(in.Rs1)
		add(in.Rs2)
	}
	return dst
}

// Def returns the register the instruction writes, or NoReg.
func (in Instr) Def() Reg {
	switch {
	case in.Op.IsStore(), in.Op.IsBranch() && in.Op != BR:
		return NoReg
	case in.Op == BR, in.Op == J, in.Op == JZ, in.Op == JNZ, in.Op == NOP, in.Op == TRAP:
		return NoReg
	case in.Op == JL:
		return RegLink
	case in.Op.IsFCmp():
		return NoReg // writes FP status, modeled separately
	default:
		return in.Rd
	}
}

// String renders the instruction in the assembler's canonical syntax.
func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Cond != CondNone {
		b.WriteByte('.')
		b.WriteString(in.Cond.String())
	}
	sp := func() { b.WriteByte(' ') }
	switch {
	case in.Op == NOP:
	case in.Op.IsLoad() && in.Op != LDC:
		sp()
		fmt.Fprintf(&b, "%s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case in.Op == LDC:
		sp()
		fmt.Fprintf(&b, "%s, %d", in.Rd, in.Imm)
	case in.Op.IsStore():
		sp()
		fmt.Fprintf(&b, "%s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case in.Op == BR:
		sp()
		fmt.Fprintf(&b, "%d", in.Imm)
	case in.Op == BZ || in.Op == BNZ:
		sp()
		fmt.Fprintf(&b, "%s, %d", in.Rs1, in.Imm)
	case in.Op.IsJump():
		sp()
		if in.HasImm {
			fmt.Fprintf(&b, "%d", in.Imm)
		} else {
			b.WriteString(in.Rs1.String())
		}
	case in.Op == CMP:
		sp()
		if in.HasImm {
			fmt.Fprintf(&b, "%s, %s, %d", in.Rd, in.Rs1, in.Imm)
		} else {
			fmt.Fprintf(&b, "%s, %s, %s", in.Rd, in.Rs1, in.Rs2)
		}
	case in.Op == MVI || in.Op == MVHI:
		sp()
		fmt.Fprintf(&b, "%s, %d", in.Rd, in.Imm)
	case in.Op == TRAP:
		sp()
		fmt.Fprintf(&b, "%d", in.Imm)
	case in.Op == RDSR:
		sp()
		b.WriteString(in.Rd.String())
	case in.Op.IsFCmp():
		sp()
		fmt.Fprintf(&b, "%s, %s", in.Rs1, in.Rs2)
	case in.Op == MV || in.Op == NEG || in.Op == INV || in.Op == FNEGS || in.Op == FNEGD ||
		in.Op == MVFL || in.Op == MVFH || in.Op == MFFL || in.Op == MFFH || in.Op == FMV ||
		(in.Op >= CVTSISF && in.Op <= CVTSFSI):
		sp()
		fmt.Fprintf(&b, "%s, %s", in.Rd, in.Rs1)
	default:
		sp()
		if in.HasImm {
			fmt.Fprintf(&b, "%s, %s, %d", in.Rd, in.Rs1, in.Imm)
		} else {
			fmt.Fprintf(&b, "%s, %s, %s", in.Rd, in.Rs1, in.Rs2)
		}
	}
	return b.String()
}
