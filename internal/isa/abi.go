package isa

// The calling convention fixed by this reproduction (DESIGN.md §4). Both
// instruction sets share it so that density and path-length comparisons
// isolate encoding effects, exactly as the paper's equal-resources
// methodology requires.
//
//	r0   condition register (D16) / hardwired zero (DLXe) — not allocatable
//	r1   link register (written by jl)
//	r2   stack pointer
//	r3   first argument / return value
//	r3-r6    integer argument registers, caller-saved
//	r7-r12   callee-saved
//	r13  global pointer (base of .data)
//	r14-r15  caller-saved temporaries
//	r16-r23  callee-saved (DLXe/32 only)
//	r24-r31  caller-saved (DLXe/32 only)
//
//	f1-f4    FP argument registers / f1 return value, caller-saved
//	f0,f5-f7 caller-saved temporaries
//	f8-f15   callee-saved
//	f16-f23  callee-saved (DLXe/32 only)
//	f24-f31  caller-saved (DLXe/32 only)

// NumArgRegs is the number of integer (and FP) argument registers.
const NumArgRegs = 4

// ArgReg returns the i'th integer argument register (0-based, i < NumArgRegs).
func ArgReg(i int) Reg { return R(3 + i) }

// FArgReg returns the i'th FP argument register.
func FArgReg(i int) Reg { return F(1 + i) }

// RetReg is the integer return-value register.
var RetReg = R(3)

// FRetReg is the FP return-value register.
var FRetReg = F(1)

// ScratchGPRs are the two integer registers the code generator reserves
// for operand shuffling, spill access and immediate materialization. They
// are reserved uniformly on every target configuration so that measured
// register-file effects compare like with like.
func ScratchGPRs() [2]Reg { return [2]Reg{R(14), R(15)} }

// ScratchFPRs are the reserved floating-point scratch registers.
func ScratchFPRs() [2]Reg { return [2]Reg{F(6), F(7)} }

// AllocatableGPRs returns the general registers available to the register
// allocator under spec, in preference order: caller-saved temporaries
// first (cheap), then callee-saved (require save/restore in the prologue).
func AllocatableGPRs(s *Spec) []Reg {
	regs := []Reg{R(3), R(4), R(5), R(6)}
	if s.NumGPR > 16 {
		for i := 24; i < s.NumGPR; i++ {
			regs = append(regs, R(i))
		}
	}
	for i := 7; i <= 12; i++ {
		regs = append(regs, R(i))
	}
	if s.NumGPR > 16 {
		for i := 16; i < 24 && i < s.NumGPR; i++ {
			regs = append(regs, R(i))
		}
	}
	return regs
}

// AllocatableFPRs returns the floating-point registers available to the
// allocator under spec, caller-saved first.
func AllocatableFPRs(s *Spec) []Reg {
	regs := []Reg{F(1), F(2), F(3), F(4), F(0), F(5)}
	if s.NumFPR > 16 {
		for i := 24; i < s.NumFPR; i++ {
			regs = append(regs, F(i))
		}
	}
	for i := 8; i <= 15; i++ {
		regs = append(regs, F(i))
	}
	if s.NumFPR > 16 {
		for i := 16; i < 24 && i < s.NumFPR; i++ {
			regs = append(regs, F(i))
		}
	}
	return regs
}

// CalleeSaved reports whether r must be preserved across calls.
func CalleeSaved(r Reg) bool {
	n := r.Num()
	if r.IsFPR() {
		return (n >= 8 && n <= 15) || (n >= 16 && n <= 23)
	}
	return (n >= 7 && n <= 12) || (n >= 16 && n <= 23)
}

// Standard memory map for linked programs (see prog package).
const (
	// TextBase is where the text segment is loaded.
	TextBase uint32 = 0x1000
	// DataBase is where the data segment is loaded; RegGP points here
	// at startup.
	DataBase uint32 = 0x40000
	// StackTop is the initial stack pointer (stack grows down).
	StackTop uint32 = 0x200000
	// MemSize is the size of simulated physical memory.
	MemSize uint32 = 0x200000
)
