package isa

import "fmt"

// Op is a semantic machine operation. The set mirrors Table 1 of the paper:
// both instruction sets implement (nearly) the same operations; they differ
// in how the operations are encoded and in which immediate forms exist.
type Op uint8

const (
	BAD Op = iota

	// Memory operations. Word loads/stores take a register base plus a
	// word-aligned displacement; on D16 the sub-word modes take no
	// displacement at all ("address for subword modes is not offsettable").
	LD   // load word
	LDH  // load halfword, sign-extend
	LDHU // load halfword, zero-extend
	LDB  // load byte, sign-extend
	LDBU // load byte, zero-extend
	ST   // store word
	STH  // store halfword
	STB  // store byte
	LDC  // D16 only: load word from a PC-relative literal pool into r0

	// Control transfer. All transfers have one architectural delay slot:
	// the following instruction is always executed.
	BR  // PC-relative unconditional branch
	BZ  // branch if register zero (D16: register is implicitly r0)
	BNZ // branch if register nonzero (D16: implicitly r0)
	J   // jump to absolute address in register; DLXe also has a J-type form
	JZ  // conditional register jump (address in register, condition in r0/rs)
	JNZ // conditional register jump
	JL  // jump and link: like J but writes return address to r1

	// Integer compare: sets destination to all-zeros or all-ones.
	// D16: both operands registers, destination implicitly r0, conditions
	// limited to lt/ltu/le/leu/eq/ne. DLXe: any GPR destination, immediate
	// right operand allowed, plus gt/gtu/ge/geu.
	CMP

	// Integer ALU.
	ADD
	ADDI // immediate add; D16 immediates are 5-bit unsigned
	SUB
	SUBI
	AND
	ANDI // DLXe only (16-bit immediate)
	OR
	ORI // DLXe only
	XOR
	XORI // DLXe only
	NEG  // D16 only: rx = -rx (DLXe uses sub rd, r0, rs)
	INV  // D16 only: rx = ^rx
	SHL
	SHLI
	SHR // logical right shift
	SHRI
	SHRA // arithmetic right shift
	SHRAI

	// Moves.
	MV   // register move (within the GPR file)
	MVI  // move immediate; D16: 9-bit signed, DLXe: 16-bit signed
	MVHI // DLXe only: set upper 16 bits (rd = imm << 16)

	// GPR <-> FPR transfer. The paper's machines lack direct FP loads and
	// stores ("to simplify the FPU interface"); values cross register
	// files 32 bits at a time.
	MVFL // FPR low word  <- GPR
	MVFH // FPR high word <- GPR
	MFFL // GPR <- FPR low word
	MFFH // GPR <- FPR high word
	FMV  // FPR <- FPR (full 64-bit register move)

	// Floating point, single (.sf) and double (.df) precision.
	// Compares write the FP status register, read back with RDSR.
	FADDS
	FSUBS
	FMULS
	FDIVS
	FNEGS
	FCMPS
	FADDD
	FSUBD
	FMULD
	FDIVD
	FNEGD
	FCMPD

	// Mode conversions (Table 1: si2sf, sf2df, di2df, df2di, df2sf).
	CVTSISF // int -> single
	CVTSIDF // int -> double (the paper's di2df)
	CVTSFDF // single -> double
	CVTDFSF // double -> single
	CVTDFSI // double -> int (the paper's df2di)
	CVTSFSI // single -> int

	// Special.
	TRAP // software trap: halt and simulator services (see sim package)
	RDSR // read FP status register into a GPR (D16: implicitly r0)
	NOP  // explicit no-operation (delay-slot filler)

	opCount
)

// NumOps is the number of defined operations (useful for tables).
const NumOps = int(opCount)

var opNames = [...]string{
	BAD: "bad",
	LD:  "ld", LDH: "ldh", LDHU: "ldhu", LDB: "ldb", LDBU: "ldbu",
	ST: "st", STH: "sth", STB: "stb", LDC: "ldc",
	BR: "br", BZ: "bz", BNZ: "bnz", J: "j", JZ: "jz", JNZ: "jnz", JL: "jl",
	CMP: "cmp",
	ADD: "add", ADDI: "addi", SUB: "sub", SUBI: "subi",
	AND: "and", ANDI: "andi", OR: "or", ORI: "ori", XOR: "xor", XORI: "xori",
	NEG: "neg", INV: "inv",
	SHL: "shl", SHLI: "shli", SHR: "shr", SHRI: "shri", SHRA: "shra", SHRAI: "shrai",
	MV: "mv", MVI: "mvi", MVHI: "mvhi",
	MVFL: "mvfl", MVFH: "mvfh", MFFL: "mffl", MFFH: "mffh", FMV: "fmv",
	FADDS: "add.sf", FSUBS: "sub.sf", FMULS: "mul.sf", FDIVS: "div.sf",
	FNEGS: "neg.sf", FCMPS: "cmp.sf",
	FADDD: "add.df", FSUBD: "sub.df", FMULD: "mul.df", FDIVD: "div.df",
	FNEGD: "neg.df", FCMPD: "cmp.df",
	CVTSISF: "si2sf", CVTSIDF: "si2df", CVTSFDF: "sf2df",
	CVTDFSF: "df2sf", CVTDFSI: "df2si", CVTSFSI: "sf2si",
	TRAP: "trap", RDSR: "rdsr", NOP: "nop",
}

// String returns the assembly mnemonic for the operation.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// OpByName maps an assembly mnemonic back to its operation. It returns BAD
// for unknown mnemonics.
func OpByName(name string) Op {
	return opByName[name]
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	switch op {
	case LD, LDH, LDHU, LDB, LDBU, LDC:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool {
	switch op {
	case ST, STH, STB:
		return true
	}
	return false
}

// IsBranch reports whether op is a PC-relative conditional or unconditional
// branch (not a register jump).
func (op Op) IsBranch() bool {
	switch op {
	case BR, BZ, BNZ:
		return true
	}
	return false
}

// IsJump reports whether op is an absolute jump (register or J-type).
func (op Op) IsJump() bool {
	switch op {
	case J, JZ, JNZ, JL:
		return true
	}
	return false
}

// IsControl reports whether op transfers control (and therefore has an
// architectural delay slot).
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsFPU reports whether op executes on the floating-point unit (and is
// therefore subject to multi-cycle result latencies).
func (op Op) IsFPU() bool {
	switch op {
	case FADDS, FSUBS, FMULS, FDIVS, FNEGS, FCMPS,
		FADDD, FSUBD, FMULD, FDIVD, FNEGD, FCMPD,
		CVTSISF, CVTSIDF, CVTSFDF, CVTDFSF, CVTDFSI, CVTSFSI:
		return true
	}
	return false
}

// IsFCmp reports whether op is a floating-point compare (writes the FP
// status register rather than a register operand).
func (op Op) IsFCmp() bool { return op == FCMPS || op == FCMPD }

// Accesses64 reports whether op touches a full 64-bit FP register value.
func (op Op) Accesses64() bool {
	switch op {
	case FADDD, FSUBD, FMULD, FDIVD, FNEGD, FCMPD, CVTSIDF, CVTDFSF, CVTDFSI, CVTSFDF:
		return true
	}
	return false
}

// HasImmediate reports whether op carries an immediate operand by
// definition (as opposed to ops that never do).
func (op Op) HasImmediate() bool {
	switch op {
	case ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, SHRAI, MVI, MVHI, TRAP:
		return true
	}
	return false
}
