package isa

import "fmt"

// Encoding identifies which binary instruction format a program uses.
type Encoding uint8

const (
	// EncD16 is the 16-bit format (five instruction types).
	EncD16 Encoding = iota
	// EncDLXe is the 32-bit DLX-variant format (three instruction types).
	EncDLXe
)

// String returns "D16" or "DLXe".
func (e Encoding) String() string {
	if e == EncD16 {
		return "D16"
	}
	return "DLXe"
}

// InstrBytes returns the fixed instruction size in bytes.
func (e Encoding) InstrBytes() uint32 {
	if e == EncD16 {
		return 2
	}
	return 4
}

// Spec describes one compiler/assembler target: an encoding plus the
// feature restrictions the paper's Section 3.3 toggles. The paper derives
// its feature analysis by "selectively restricting" the DLXe code
// generator; RestrictRegs and TwoAddress build those restricted variants.
type Spec struct {
	Name string
	Enc  Encoding

	// Register files visible to the compiler.
	NumGPR int
	NumFPR int

	// ThreeAddress: destination may differ from the left source operand.
	// When false, ALU operations require Rd == Rs1 and the compiler
	// inserts moves.
	ThreeAddress bool

	// Immediate capabilities.
	ALUImmBits    int  // unsigned bits for addi/subi/shifts
	MVIBits       int  // signed bits for mvi
	HasMVHI       bool // mvhi (set upper 16 bits)
	HasLogicalImm bool // andi/ori/xori with 16-bit immediates
	HasCmpImm     bool // compare with immediate right operand
	HasGTConds    bool // gt/gtu/ge/geu compare conditions

	// Addressing capabilities.
	MemDispBits    int  // unsigned bits of *word* displacement for ld/st
	SubwordDisp    bool // whether ldb/ldh/stb/sth accept a displacement
	HasLDC         bool // PC-relative literal-pool load (D16)
	LDCRangeBytes  int  // ± reach of an LDC literal
	BranchRangeIns int  // ± reach of br/bz/bnz in *instructions*
	HasJType       bool // absolute-target j/jl (DLXe 26-bit J-type)

	// Register semantics.
	R0Zero  bool // r0 hardwired to zero (DLXe)
	R0IsCC  bool // compares implicitly target r0; bz/bnz implicitly test it (D16)
	RdsrAny bool // rdsr may target any GPR (DLXe); else implicitly r0

	// CmpImm8 is the paper's Section 3.3.3 proposal: give up one bit of
	// the D16 MVI immediate (9 -> 8 bits) to gain an 8-bit
	// compare-equal-immediate instruction. See D16Plus.
	CmpImm8 bool
}

// InstrBytes returns the fixed instruction size for the target.
func (s *Spec) InstrBytes() uint32 { return s.Enc.InstrBytes() }

// MaxALUImm returns the largest unsigned ALU immediate.
func (s *Spec) MaxALUImm() int32 { return 1<<uint(s.ALUImmBits) - 1 }

// MVIRange returns the inclusive signed range of the mvi immediate.
func (s *Spec) MVIRange() (lo, hi int32) {
	half := int32(1) << uint(s.MVIBits-1)
	return -half, half - 1
}

// MaxMemDisp returns the largest byte displacement usable on a word
// load/store (word displacements scale by 4).
func (s *Spec) MaxMemDisp() int32 { return (1<<uint(s.MemDispBits) - 1) * 4 }

// BranchRangeBytes returns the ± reach of a conditional branch in bytes.
func (s *Spec) BranchRangeBytes() int32 {
	return int32(s.BranchRangeIns) * int32(s.InstrBytes())
}

// FitsMemDisp reports whether a byte displacement is encodable on a word
// load/store for this target.
func (s *Spec) FitsMemDisp(disp int32) bool {
	return disp >= 0 && disp <= s.MaxMemDisp() && disp%4 == 0
}

// FitsALUImm reports whether v is encodable as an addi/subi/shift
// immediate.
func (s *Spec) FitsALUImm(v int32) bool { return v >= 0 && v <= s.MaxALUImm() }

// FitsMVI reports whether v is encodable as a move-immediate.
func (s *Spec) FitsMVI(v int32) bool {
	lo, hi := s.MVIRange()
	return v >= lo && v <= hi
}

// String returns the spec name.
func (s *Spec) String() string { return s.Name }

// D16 is the 16-bit instruction set: 16+16 registers, two-address,
// 5-bit ALU immediates, 9-bit move immediate, 7-bit word displacements
// (128 bytes), ±1024-instruction branches, PC-relative LDC literals with
// 4 KiB reach, implicit condition register r0.
func D16() *Spec {
	return &Spec{
		Name:           "D16/16/2",
		Enc:            EncD16,
		NumGPR:         16,
		NumFPR:         16,
		ThreeAddress:   false,
		ALUImmBits:     5,
		MVIBits:        9,
		HasMVHI:        false,
		HasLogicalImm:  false,
		HasCmpImm:      false,
		HasGTConds:     false,
		MemDispBits:    5, // 32 words = 128 bytes
		SubwordDisp:    false,
		HasLDC:         true,
		LDCRangeBytes:  4096,
		BranchRangeIns: 1024,
		HasJType:       false,
		R0Zero:         false,
		R0IsCC:         true,
		RdsrAny:        false,
	}
}

// DLXe is the 32-bit instruction set: 32+32 registers, three-address,
// 16-bit immediates and displacements, logical immediates, compare
// immediates and gt-form conditions, mvhi, 26-bit J-type jumps, and r0
// hardwired to zero.
func DLXe() *Spec {
	return &Spec{
		Name:           "DLXe/32/3",
		Enc:            EncDLXe,
		NumGPR:         32,
		NumFPR:         32,
		ThreeAddress:   true,
		ALUImmBits:     15, // addi/subi immediates kept non-negative; 16-bit field
		MVIBits:        16,
		HasMVHI:        true,
		HasLogicalImm:  true,
		HasCmpImm:      true,
		HasGTConds:     true,
		MemDispBits:    13, // 16-bit byte displacement = 2^13 words (positive half)
		SubwordDisp:    true,
		HasLDC:         false,
		LDCRangeBytes:  0,
		BranchRangeIns: 8191, // 16-bit signed byte offset / 4
		HasJType:       true,
		R0Zero:         true,
		R0IsCC:         false,
		RdsrAny:        true,
	}
}

// D16Plus is the variant the paper's Section 3.3.3 proposes but does not
// build: "Giving up one bit in the D16 MVI immediate field, one could
// implement an 8-bit move immediate and an 8-bit compare-equal immediate
// instruction, which could improve D16 performance by up to 2 percent."
// The ablate-d16plus experiment measures that claim.
func D16Plus() *Spec {
	s := D16()
	s.Name = "D16+/16/2"
	s.MVIBits = 8
	s.CmpImm8 = true
	return s
}

// RestrictRegs returns a copy of s with the visible register files reduced
// to n of each class (the paper's "DLXe restricted to a D16-sized register
// file"). The encoding is unchanged; only the compiler's freedom shrinks.
func RestrictRegs(s *Spec, n int) *Spec {
	c := *s
	c.NumGPR = n
	c.NumFPR = n
	c.Name = renameSpec(&c)
	return &c
}

// TwoAddress returns a copy of s restricted to two-address operation
// (destination register must equal the left source register).
func TwoAddress(s *Spec) *Spec {
	c := *s
	c.ThreeAddress = false
	c.Name = renameSpec(&c)
	return &c
}

func renameSpec(s *Spec) string {
	arity := 2
	if s.ThreeAddress {
		arity = 3
	}
	return fmt.Sprintf("%s/%d/%d", s.Enc, s.NumGPR, arity)
}

// PaperConfigs returns the five compiler configurations the paper
// evaluates, in the column order of its Tables 6 and 7:
// D16/16/2, DLXe/16/2, DLXe/16/3, DLXe/32/2, DLXe/32/3.
func PaperConfigs() []*Spec {
	return []*Spec{
		D16(),
		TwoAddress(RestrictRegs(DLXe(), 16)),
		RestrictRegs(DLXe(), 16),
		TwoAddress(DLXe()),
		DLXe(),
	}
}
