package isa

// Pipeline result latencies in cycles (a result produced at cycle t is
// usable by an instruction issuing at t+latency). Ordinary operations
// have latency 1; loads have 2 (the one-cycle delay slot). These are
// machine-model constants shared by the simulator's scoreboard, the
// pipeline timing engine and the static cost analyzer, so the three can
// never disagree on a latency.
const (
	LatNormal  = 1
	LatLoad    = 2
	LatFAdd    = 2
	LatFMul    = 5
	LatFDivS   = 12
	LatFDivD   = 19
	LatFCmp    = 2
	LatConvert = 2
)

// ResultLatency is the charge rule for operand readiness: the number of
// cycles after issue before op's result is architecturally available to
// a dependent instruction. Loads return LatLoad — the base load-use
// window; timing models layer bus latency and port contention on top.
// FP compares return LatFCmp — the window an rdsr waits on through the
// FP status register rather than a general register.
func ResultLatency(op Op) int64 {
	switch {
	case op.IsLoad():
		return LatLoad
	case op == FADDS, op == FSUBS, op == FADDD,
		op == FSUBD, op == FNEGS, op == FNEGD:
		return LatFAdd
	case op == FMULS, op == FMULD:
		return LatFMul
	case op == FDIVS:
		return LatFDivS
	case op == FDIVD:
		return LatFDivD
	case op.IsFCmp():
		return LatFCmp
	case op >= CVTSISF && op <= CVTSFSI:
		return LatConvert
	}
	return LatNormal
}
