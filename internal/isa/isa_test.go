package isa

import (
	"testing"
	"testing/quick"
)

func TestRegisterNaming(t *testing.T) {
	if R(0).String() != "r0" || R(31).String() != "r31" {
		t.Error("GPR names wrong")
	}
	if F(0).String() != "f0" || F(31).String() != "f31" {
		t.Error("FPR names wrong")
	}
	if NoReg.String() != "-" {
		t.Error("NoReg name wrong")
	}
	if !R(5).IsGPR() || R(5).IsFPR() || !F(5).IsFPR() || F(5).IsGPR() {
		t.Error("register class predicates wrong")
	}
	if F(7).Num() != 7 || R(7).Num() != 7 {
		t.Error("Num wrong")
	}
	if NoReg.Valid() {
		t.Error("NoReg must not be valid")
	}
}

func TestRegPanicsOnBadNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R(32) should panic")
		}
	}()
	R(32)
}

func TestOpNamesRoundTrip(t *testing.T) {
	for op := BAD + 1; int(op) < NumOps; op++ {
		name := op.String()
		if got := OpByName(name); got != op {
			t.Errorf("OpByName(%q) = %v, want %v", name, got, op)
		}
	}
	if OpByName("frobnicate") != BAD {
		t.Error("unknown mnemonic should map to BAD")
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !LD.IsLoad() || !LDC.IsLoad() || ST.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !ST.IsStore() || LD.IsStore() {
		t.Error("IsStore wrong")
	}
	if !BR.IsBranch() || J.IsBranch() || !J.IsJump() || BR.IsJump() {
		t.Error("branch/jump predicates wrong")
	}
	if !BR.IsControl() || !JL.IsControl() || ADD.IsControl() {
		t.Error("IsControl wrong")
	}
	if !FMULD.IsFPU() || ADD.IsFPU() {
		t.Error("IsFPU wrong")
	}
	if !FCMPS.IsFCmp() || FADDS.IsFCmp() {
		t.Error("IsFCmp wrong")
	}
}

// Property: Negated is an involution, and Swapped is an involution.
func TestCondInvolutions(t *testing.T) {
	for c := LT; c <= GEU; c++ {
		if c.Negated().Negated() != c {
			t.Errorf("Negated(Negated(%v)) != %v", c, c)
		}
		if c.Swapped().Swapped() != c {
			t.Errorf("Swapped(Swapped(%v)) != %v", c, c)
		}
	}
}

// Property: for all int32 pairs, cond(a,b) == negated(cond)(a,b) inverted,
// and cond(a,b) == swapped(cond)(b,a).
func TestCondSemantics(t *testing.T) {
	f := func(a, b int32) bool {
		for c := LT; c <= GEU; c++ {
			if c.EvalInt(a, b) == c.Negated().EvalInt(a, b) {
				return false
			}
			if c.EvalInt(a, b) != c.Swapped().EvalInt(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondByName(t *testing.T) {
	if CondByName("ltu") != LTU || CondByName("geu") != GEU {
		t.Error("CondByName wrong")
	}
	if CondByName("zz") != CondNone || CondByName("") != CondNone {
		t.Error("unknown condition should be CondNone")
	}
}

func TestSpecProperties(t *testing.T) {
	d16, dlxe := D16(), DLXe()
	if d16.InstrBytes() != 2 || dlxe.InstrBytes() != 4 {
		t.Error("instruction sizes wrong")
	}
	if d16.MaxALUImm() != 31 {
		t.Errorf("D16 ALU imm max = %d, want 31", d16.MaxALUImm())
	}
	if lo, hi := d16.MVIRange(); lo != -256 || hi != 255 {
		t.Errorf("D16 MVI range [%d,%d], want [-256,255]", lo, hi)
	}
	if d16.MaxMemDisp() != 124 {
		t.Errorf("D16 memory displacement max = %d, want 124", d16.MaxMemDisp())
	}
	if !d16.FitsMemDisp(124) || d16.FitsMemDisp(128) || d16.FitsMemDisp(-4) || d16.FitsMemDisp(6) {
		t.Error("D16 FitsMemDisp wrong")
	}
	if !dlxe.FitsMemDisp(32760) || dlxe.FitsMemDisp(1<<20) {
		t.Error("DLXe FitsMemDisp wrong")
	}
	if !dlxe.ThreeAddress || d16.ThreeAddress {
		t.Error("address arity wrong")
	}
}

func TestRestrictions(t *testing.T) {
	r := RestrictRegs(DLXe(), 16)
	if r.NumGPR != 16 || r.NumFPR != 16 {
		t.Error("RestrictRegs did not shrink the files")
	}
	if r.Name != "DLXe/16/3" {
		t.Errorf("restricted name %q", r.Name)
	}
	two := TwoAddress(r)
	if two.ThreeAddress || two.Name != "DLXe/16/2" {
		t.Errorf("two-address restriction wrong: %q", two.Name)
	}
	// Restrictions must not mutate the base spec.
	if DLXe().NumGPR != 32 {
		t.Error("RestrictRegs mutated the base spec")
	}
}

func TestPaperConfigs(t *testing.T) {
	cfgs := PaperConfigs()
	want := []string{"D16/16/2", "DLXe/16/2", "DLXe/16/3", "DLXe/32/2", "DLXe/32/3"}
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for i, c := range cfgs {
		if c.Name != want[i] {
			t.Errorf("config %d = %q, want %q", i, c.Name, want[i])
		}
	}
}

func TestAllocatableRegisters(t *testing.T) {
	for _, spec := range PaperConfigs() {
		for _, r := range AllocatableGPRs(spec) {
			if r.Num() >= spec.NumGPR {
				t.Errorf("%s: allocatable %s exceeds file", spec, r)
			}
			switch r {
			case RegCC, RegLink, RegSP, RegGP, ScratchGPRs()[0], ScratchGPRs()[1]:
				t.Errorf("%s: reserved register %s is allocatable", spec, r)
			}
		}
		for _, r := range AllocatableFPRs(spec) {
			if r.Num() >= spec.NumFPR {
				t.Errorf("%s: allocatable %s exceeds FP file", spec, r)
			}
			if r == ScratchFPRs()[0] || r == ScratchFPRs()[1] {
				t.Errorf("%s: FP scratch %s is allocatable", spec, r)
			}
		}
	}
	// DLXe/32 must expose strictly more registers than DLXe/16.
	if len(AllocatableGPRs(DLXe())) <= len(AllocatableGPRs(RestrictRegs(DLXe(), 16))) {
		t.Error("32-register file should offer more allocatable registers")
	}
}

func TestCalleeSavedConvention(t *testing.T) {
	if !CalleeSaved(R(7)) || !CalleeSaved(R(12)) || CalleeSaved(R(3)) || CalleeSaved(R(14)) {
		t.Error("integer callee-saved set wrong")
	}
	if !CalleeSaved(F(8)) || CalleeSaved(F(1)) {
		t.Error("FP callee-saved set wrong")
	}
	if !CalleeSaved(R(16)) || CalleeSaved(R(24)) {
		t.Error("extended-file callee-saved split wrong")
	}
}

func TestInstrUsesDef(t *testing.T) {
	add := Instr{Op: ADD, Rd: R(3), Rs1: R(4), Rs2: R(5)}
	if add.Def() != R(3) {
		t.Error("ADD def wrong")
	}
	uses := add.Uses(nil)
	if len(uses) != 2 || uses[0] != R(4) || uses[1] != R(5) {
		t.Errorf("ADD uses %v", uses)
	}
	st := Instr{Op: ST, Rd: R(3), Rs1: R(2), Imm: 4}
	if st.Def() != NoReg {
		t.Error("store must not define a register")
	}
	if u := st.Uses(nil); len(u) != 2 {
		t.Errorf("store uses %v", u)
	}
	jl := Instr{Op: JL, Rs1: R(6)}
	if jl.Def() != RegLink {
		t.Error("jl must define the link register")
	}
	mvi := Instr{Op: MVI, Rd: R(4), Imm: 7, HasImm: true}
	if len(mvi.Uses(nil)) != 0 {
		t.Error("mvi reads no registers")
	}
}
