// Package isa defines the machine-independent instruction model shared by
// the D16 and DLXe instruction encodings of Bunda et al. (ISCA 1993).
//
// Both instruction sets are "RISC-inspired load-store" designs that execute
// on the same five-stage pipeline; they differ only in encoding width
// (16 vs. 32 bits), register-file size (16 vs. 32 of each class), address
// arity (two- vs. three-address), and immediate/displacement field widths.
// This package captures the common semantic layer: registers, operations,
// conditions, the decoded instruction form, and the TargetSpec feature
// knobs that the encoders, the assembler and the compiler backend consult.
package isa

import "fmt"

// Reg names one architectural register. General-purpose registers are
// R(0)..R(31) and floating-point registers are F(0)..F(31); the two files
// are disjoint namespaces folded into one type so that instructions can
// carry either kind. The zero value NoReg means "no register operand".
type Reg uint8

// NoReg is the absent-operand sentinel. It is deliberately distinct from
// R(0): r0 is a real, architecturally special register on both machines.
const NoReg Reg = 0xFF

const fprBase = 32

// R returns the general-purpose register with the given number.
func R(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: bad GPR number %d", n))
	}
	return Reg(n)
}

// F returns the floating-point register with the given number.
func F(n int) Reg {
	if n < 0 || n > 31 {
		panic(fmt.Sprintf("isa: bad FPR number %d", n))
	}
	return Reg(fprBase + n)
}

// IsGPR reports whether r names a general-purpose register.
func (r Reg) IsGPR() bool { return r < fprBase }

// IsFPR reports whether r names a floating-point register.
func (r Reg) IsFPR() bool { return r != NoReg && r >= fprBase && r < 2*fprBase }

// Valid reports whether r names any architectural register.
func (r Reg) Valid() bool { return r != NoReg && r < 2*fprBase }

// Num returns the register number within its file (0..31).
func (r Reg) Num() int {
	if r.IsFPR() {
		return int(r - fprBase)
	}
	return int(r)
}

// String renders the conventional assembly name (r4, f7, ...).
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFPR():
		return fmt.Sprintf("f%d", r.Num())
	default:
		return fmt.Sprintf("r%d", r.Num())
	}
}

// Architectural register roles shared by both instruction sets. See
// DESIGN.md §4; these mirror the paper's fixed conventions (r0 condition /
// zero, r1 linkage) plus the ABI this reproduction fixes for its compiler.
const (
	// RegCC is r0: on D16 the implicit destination of integer compares and
	// the implicit source of bz/bnz; on DLXe it is hardwired zero.
	RegCC = Reg(0)
	// RegLink is r1, the linkage register written by jl (the paper fixes
	// this for both machines).
	RegLink = Reg(1)
	// RegSP is r2, the stack pointer (grows down, 8-byte aligned frames).
	RegSP = Reg(2)
	// RegGP is r13, the global pointer: a fixed base into the .data
	// segment so short displacements can reach frequently used globals.
	RegGP = Reg(13)
)
