package isa

import "fmt"

// Cond is a compare condition. The paper's D16 supports only the first six
// (lt ltu le leu eq ne) with register operands; DLXe adds the gt/gtu/ge/geu
// forms and immediate right operands. The compiler legalizes a gt-form
// compare for D16 by swapping operands.
type Cond uint8

const (
	CondNone Cond = iota
	LT            // signed less-than
	LTU           // unsigned less-than
	LE            // signed less-or-equal
	LEU           // unsigned less-or-equal
	EQ            // equal
	NE            // not equal
	GT            // signed greater-than (DLXe only)
	GTU           // unsigned greater-than (DLXe only)
	GE            // signed greater-or-equal (DLXe only)
	GEU           // unsigned greater-or-equal (DLXe only)

	condCount
)

// NumConds is the number of defined conditions including CondNone.
const NumConds = int(condCount)

var condNames = [...]string{
	CondNone: "",
	LT:       "lt", LTU: "ltu", LE: "le", LEU: "leu", EQ: "eq", NE: "ne",
	GT: "gt", GTU: "gtu", GE: "ge", GEU: "geu",
}

// String returns the condition suffix used in assembly (e.g. "lt").
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CondByName maps an assembly condition suffix to its value; it returns
// CondNone for unknown names.
func CondByName(name string) Cond {
	for c, n := range condNames {
		if n == name && n != "" {
			return Cond(c)
		}
	}
	return CondNone
}

// Swapped returns the condition that holds for (b ? a) when c holds for
// (a ? b): lt <-> gt, le <-> ge, eq/ne unchanged. This is how a D16 code
// generator expresses the greater-than forms it lacks.
func (c Cond) Swapped() Cond {
	switch c {
	case LT:
		return GT
	case LTU:
		return GTU
	case LE:
		return GE
	case LEU:
		return GEU
	case GT:
		return LT
	case GTU:
		return LTU
	case GE:
		return LE
	case GEU:
		return LEU
	default:
		return c
	}
}

// Negated returns the complementary condition (eq <-> ne, lt <-> ge, ...).
func (c Cond) Negated() Cond {
	switch c {
	case LT:
		return GE
	case LTU:
		return GEU
	case LE:
		return GT
	case LEU:
		return GTU
	case EQ:
		return NE
	case NE:
		return EQ
	case GT:
		return LE
	case GTU:
		return LEU
	case GE:
		return LT
	case GEU:
		return LTU
	default:
		return c
	}
}

// D16Legal reports whether a D16 compare can express the condition
// directly (without operand swapping).
func (c Cond) D16Legal() bool {
	switch c {
	case LT, LTU, LE, LEU, EQ, NE:
		return true
	}
	return false
}

// EvalInt applies the condition to two 32-bit integer operands.
func (c Cond) EvalInt(a, b int32) bool {
	switch c {
	case LT:
		return a < b
	case LTU:
		return uint32(a) < uint32(b)
	case LE:
		return a <= b
	case LEU:
		return uint32(a) <= uint32(b)
	case EQ:
		return a == b
	case NE:
		return a != b
	case GT:
		return a > b
	case GTU:
		return uint32(a) > uint32(b)
	case GE:
		return a >= b
	case GEU:
		return uint32(a) >= uint32(b)
	default:
		return false
	}
}

// EvalFloat applies the condition to two float64 operands (FP compares use
// only the ordered signed forms).
func (c Cond) EvalFloat(a, b float64) bool {
	switch c {
	case LT, LTU:
		return a < b
	case LE, LEU:
		return a <= b
	case EQ:
		return a == b
	case NE:
		return a != b
	case GT, GTU:
		return a > b
	case GE, GEU:
		return a >= b
	default:
		return false
	}
}
