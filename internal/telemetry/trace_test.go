package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestSpanNestingInExport records parent>child>grandchild spans and
// checks the exported Chrome trace: valid JSON, start-time ordering, and
// time containment (which is what makes the viewer nest them).
func TestSpanNestingInExport(t *testing.T) {
	tr := NewTracer()
	parent := tr.Start("measure", String("bench", "dhrystone"), String("config", "D16"))
	time.Sleep(2 * time.Millisecond)
	child := tr.Start("compile")
	time.Sleep(2 * time.Millisecond)
	grand := tr.Start("assemble")
	time.Sleep(2 * time.Millisecond)
	grand.End()
	child.End()
	time.Sleep(2 * time.Millisecond)
	parent.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]Event{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", e.Name, e.Ph)
		}
		byName[e.Name] = e
	}
	m, c, a := byName["measure"], byName["compile"], byName["assemble"]
	if m.Args["bench"] != "dhrystone" || m.Args["config"] != "D16" {
		t.Errorf("span args lost: %+v", m.Args)
	}
	contains := func(outer, inner Event) bool {
		return inner.TS >= outer.TS && inner.TS+inner.Dur <= outer.TS+outer.Dur
	}
	if !contains(m, c) || !contains(c, a) {
		t.Errorf("spans do not nest by containment:\nmeasure %v+%v\ncompile %v+%v\nassemble %v+%v",
			m.TS, m.Dur, c.TS, c.Dur, a.TS, a.Dur)
	}
	// Events() is ordered by start time.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Errorf("events out of order: %v after %v", evs[i].TS, evs[i-1].TS)
		}
	}
}

func TestDisabledTracerIsNoOp(t *testing.T) {
	SetGlobalTracer(nil)
	s := StartSpan("anything", String("k", "v"))
	s.Annotate("k2", "v2")
	s.End() // must not panic
	var tr *Tracer
	if tr.Start("x") != nil {
		t.Error("nil tracer produced a live span")
	}
	if tr.Events() != nil {
		t.Error("nil tracer produced events")
	}
}

func TestGlobalTracerCollects(t *testing.T) {
	tr := NewTracer()
	SetGlobalTracer(tr)
	defer SetGlobalTracer(nil)
	StartSpan("stage").End()
	d := tr.DurationsByName()
	if _, ok := d["stage"]; !ok || len(tr.Events()) != 1 {
		t.Errorf("global span not recorded: %v", tr.Events())
	}
}
