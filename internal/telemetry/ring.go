package telemetry

// Ring is a fixed-capacity ring buffer keeping the last-N pushed values
// (the simulator's instruction-trace buffer). It is NOT safe for
// concurrent use: the intended producers are single-threaded inner
// loops, where a mutex per event would be the dominant cost.
type Ring[T any] struct {
	buf   []T
	next  int
	total int64
}

// NewRing returns a ring holding the last n values (n must be > 0).
func NewRing[T any](n int) *Ring[T] {
	if n <= 0 {
		panic("telemetry: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, 0, n)}
}

// Push appends v, evicting the oldest value once the ring is full.
func (r *Ring[T]) Push(v T) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.next] = v
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Len returns the number of values currently held (≤ capacity).
func (r *Ring[T]) Len() int { return len(r.buf) }

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return cap(r.buf) }

// Total returns the number of values ever pushed.
func (r *Ring[T]) Total() int64 { return r.total }

// Slice returns the retained values, oldest first.
func (r *Ring[T]) Slice() []T {
	out := make([]T, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}
