package telemetry

import "fmt"

// BreakdownPart is one named share of an attributed total.
type BreakdownPart struct {
	Name    string  `json:"name"`
	Value   int64   `json:"value"`
	Percent float64 `json:"percent"`
}

// Breakdown is the exchange form of an exhaustive attribution: a total
// split into named parts that must sum to it exactly. Producers (the
// pipeline cycle accountant) fill it; writers call Check before export
// so a leaky attribution can never ship silently.
type Breakdown struct {
	Name  string          `json:"name"`
	Total int64           `json:"total"`
	Parts []BreakdownPart `json:"parts"`
}

// NewBreakdown returns an empty attribution of total.
func NewBreakdown(name string, total int64) *Breakdown {
	return &Breakdown{Name: name, Total: total}
}

// Add appends one part; its percentage is derived from the total.
func (b *Breakdown) Add(name string, value int64) {
	p := BreakdownPart{Name: name, Value: value}
	if b.Total != 0 {
		p.Percent = 100 * float64(value) / float64(b.Total)
	}
	b.Parts = append(b.Parts, p)
}

// Check verifies the parts sum to the total exactly.
func (b *Breakdown) Check() error {
	var sum int64
	for _, p := range b.Parts {
		sum += p.Value
	}
	if sum != b.Total {
		return fmt.Errorf("telemetry: breakdown %q leaks: parts sum %d != total %d",
			b.Name, sum, b.Total)
	}
	return nil
}
