package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the registry's thread
// safety proof, and the totals check its correctness.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10_000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events")
			g := r.Gauge("level")
			h := r.Histogram("latency")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("events").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("level").Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("latency")
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var bucketSum int64
	for _, b := range h.snapshot("latency").Hist {
		bucketSum += b.Count
	}
	if bucketSum != h.Count() {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramMinMaxBuckets(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{7, 1, 0, 900, 16} {
		h.Observe(v)
	}
	s := h.snapshot("h")
	if s.Min != 0 || s.Max != 900 {
		t.Errorf("min/max = %d/%d, want 0/900", s.Min, s.Max)
	}
	if s.Count != 5 || s.Sum != 924 {
		t.Errorf("count/sum = %d/%d, want 5/924", s.Count, s.Sum)
	}
	// 16 lands in [16,32); 900 in [512,1024); 0 in the zero bucket.
	want := map[int64]int64{0: 1, 1: 1, 4: 1, 16: 1, 512: 1}
	for _, b := range s.Hist {
		if want[b.Low] != b.Count {
			t.Errorf("bucket low=%d count=%d unexpected", b.Low, b.Count)
		}
		if b.Low > 0 && !(b.Low <= 900 && b.High > b.Low) {
			t.Errorf("malformed bucket %+v", b)
		}
	}
}

func TestRegisterFuncAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	backing := int64(42)
	r.RegisterFunc("b.live", func() int64 { return backing })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("exported %d metrics, want 2", len(doc.Metrics))
	}
	// Sorted by name, and the func gauge reads the live value.
	if doc.Metrics[0].Name != "a.count" || doc.Metrics[0].Value != 3 {
		t.Errorf("metric[0] = %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Name != "b.live" || doc.Metrics[1].Value != 42 {
		t.Errorf("metric[1] = %+v", doc.Metrics[1])
	}
}

func TestMetricKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}
