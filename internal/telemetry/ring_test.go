package telemetry

import (
	"reflect"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 || r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d total=%d", r.Cap(), r.Len(), r.Total())
	}

	// Partially filled: order preserved, no eviction.
	r.Push(1)
	r.Push(2)
	if got := r.Slice(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("partial ring = %v", got)
	}

	// Push past capacity twice over; only the last 4 survive, oldest first.
	for v := 3; v <= 10; v++ {
		r.Push(v)
	}
	if got := r.Slice(); !reflect.DeepEqual(got, []int{7, 8, 9, 10}) {
		t.Errorf("wrapped ring = %v, want [7 8 9 10]", got)
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Errorf("len=%d total=%d, want 4/10", r.Len(), r.Total())
	}

	// Exactly one more: 7 is evicted.
	r.Push(11)
	if got := r.Slice(); !reflect.DeepEqual(got, []int{8, 9, 10, 11}) {
		t.Errorf("ring after one more push = %v", got)
	}
}

func TestRingCapacityOne(t *testing.T) {
	r := NewRing[string](1)
	r.Push("a")
	r.Push("b")
	if got := r.Slice(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("ring = %v, want [b]", got)
	}
}

func TestRingRejectsZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

func TestExperimentResultCopiesCells(t *testing.T) {
	res := NewExperimentResult("fig4", "Figure 4")
	header := []string{"program", "ratio"}
	rows := [][]string{{"dhrystone", "1.50"}}
	res.AddTable("caption", header, rows)
	rows[0][0] = "mutated"
	header[0] = "mutated"
	if res.Tables[0].Rows[0][0] != "dhrystone" || res.Tables[0].Header[0] != "program" {
		t.Error("AddTable aliased caller slices")
	}
}
