package telemetry

import (
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("mcc.compiles").Add(3)
	r.Gauge("sim.instrs").Set(42)
	h := r.Histogram("mcc.pass.opt.ns")
	h.Observe(3)
	h.Observe(900)
	r.RegisterFunc("live.value", func() int64 { return 7 })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mcc_compiles counter\nmcc_compiles 3\n",
		"# TYPE sim_instrs gauge\nsim_instrs 42\n",
		"# TYPE live_value gauge\nlive_value 7\n",
		"# TYPE mcc_pass_opt_ns histogram\n",
		"mcc_pass_opt_ns_bucket{le=\"3\"} 1\n",
		"mcc_pass_opt_ns_bucket{le=\"1023\"} 2\n",
		"mcc_pass_opt_ns_bucket{le=\"+Inf\"} 2\n",
		"mcc_pass_opt_ns_sum 903\n",
		"mcc_pass_opt_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"mcc.pass.opt-2.ns": "mcc_pass_opt_2_ns",
		"plain":             "plain",
		"9lead":             "_lead",
		"a:b_c9":            "a:b_c9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBreakdownCheck(t *testing.T) {
	b := NewBreakdown("cycles", 10)
	b.Add("useful", 6)
	b.Add("stall", 4)
	if err := b.Check(); err != nil {
		t.Errorf("exact breakdown failed: %v", err)
	}
	if b.Parts[0].Percent != 60 {
		t.Errorf("percent = %v, want 60", b.Parts[0].Percent)
	}
	b.Add("leak", 1)
	if err := b.Check(); err == nil {
		t.Error("leaky breakdown passed Check")
	}
}
