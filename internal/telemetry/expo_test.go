package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("mcc.compiles").Add(3)
	r.Gauge("sim.instrs").Set(42)
	h := r.Histogram("mcc.pass.opt.ns")
	h.Observe(3)
	h.Observe(900)
	r.RegisterFunc("live.value", func() int64 { return 7 })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mcc_compiles counter\nmcc_compiles 3\n",
		"# TYPE sim_instrs gauge\nsim_instrs 42\n",
		"# TYPE live_value gauge\nlive_value 7\n",
		"# TYPE mcc_pass_opt_ns histogram\n",
		"mcc_pass_opt_ns_bucket{le=\"3\"} 1\n",
		"mcc_pass_opt_ns_bucket{le=\"1023\"} 2\n",
		"mcc_pass_opt_ns_bucket{le=\"+Inf\"} 2\n",
		"mcc_pass_opt_ns_sum 903\n",
		"mcc_pass_opt_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"mcc.pass.opt-2.ns": "mcc_pass_opt_2_ns",
		"plain":             "plain",
		"9lead":             "_lead",
		"a:b_c9":            "a:b_c9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePromEscapesNames checks every character outside the
// Prometheus grammar is rewritten, so a hostile or just unusual metric
// name can never produce an unparsable exposition line.
func TestWritePromEscapesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter(`http.request-latency/µs"x`).Inc()
	r.Gauge("9starts.with.digit").Set(1)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_request_latency__s_x counter\nhttp_request_latency__s_x 1\n",
		"# TYPE _starts_with_digit gauge\n_starts_with_digit 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	for _, bad := range []string{"µ", `"`, "/", "-", "\n9starts"} {
		if strings.Contains(out, bad) {
			t.Errorf("unescaped %q leaked into:\n%s", bad, out)
		}
	}
}

// TestWritePromGuardsNonFinite checks NaN and ±Inf float series are
// dropped rather than emitted (Prometheus parsers reject them).
func TestWritePromGuardsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var b strings.Builder
		s := Snapshot{Name: "x", Kind: "fixed_histogram", Count: 1, Sum: 1, Mean: v}
		if err := writePromFixed(&b, "x", s); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(b.String(), "_mean") {
			t.Errorf("mean=%v emitted:\n%s", v, b.String())
		}
	}
	var b strings.Builder
	if err := writePromFixed(&b, "x", Snapshot{Name: "x", Kind: "fixed_histogram", Count: 2, Sum: 10, Mean: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_mean 5\n") {
		t.Errorf("finite mean dropped:\n%s", b.String())
	}
}

// TestWritePromStableUnderConcurrentRegistration registers metrics from
// many goroutines and checks repeated expositions render the full set in
// one stable (sorted) order — the scrape must not depend on insertion
// order or map iteration.
func TestWritePromStableUnderConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				r.Counter(fmt.Sprintf("c.%02d.%02d", g, i)).Inc()
				r.FixedHistogram(fmt.Sprintf("h.%02d.%02d", g, i), []int64{1, 10}).Observe(int64(i))
			}
		}(g)
	}
	wg.Wait()

	var first strings.Builder
	if err := r.WriteProm(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var again strings.Builder
		if err := r.WriteProm(&again); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("exposition order unstable between scrapes:\n%s\nvs\n%s", first.String(), again.String())
		}
	}
	// Every registered metric made it out, in sorted order.
	lines := strings.Split(first.String(), "\n")
	var typeNames []string
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			typeNames = append(typeNames, strings.Fields(l)[2])
		}
	}
	var counters int
	for _, n := range typeNames {
		if strings.HasPrefix(n, "c_") {
			counters++
		}
	}
	if counters != 200 {
		t.Fatalf("exposition has %d counters, want 200", counters)
	}
	// A fixed histogram emits its quantile/mean gauges right after the
	// histogram itself; ordering is by the base metric name.
	base := func(n string) string {
		for _, suf := range []string{"_p50", "_p90", "_p99", "_mean"} {
			n = strings.TrimSuffix(n, suf)
		}
		return n
	}
	for i := 1; i < len(typeNames); i++ {
		if base(typeNames[i]) < base(typeNames[i-1]) {
			t.Fatalf("TYPE lines out of order: %q after %q", typeNames[i], typeNames[i-1])
		}
	}
}

func TestBreakdownCheck(t *testing.T) {
	b := NewBreakdown("cycles", 10)
	b.Add("useful", 6)
	b.Add("stall", 4)
	if err := b.Check(); err != nil {
		t.Errorf("exact breakdown failed: %v", err)
	}
	if b.Parts[0].Percent != 60 {
		t.Errorf("percent = %v, want 60", b.Parts[0].Percent)
	}
	b.Add("leak", 1)
	if err := b.Check(); err == nil {
		t.Error("leaky breakdown passed Check")
	}
}
