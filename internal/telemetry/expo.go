package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WriteProm writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4), so a long-running sweep can be
// scraped live through an HTTP /metrics endpoint. Metric names are
// sanitized to the Prometheus grammar (every character outside
// [a-zA-Z0-9_:] becomes '_'); counters and gauges expose their value
// directly, histograms expose cumulative le-labelled buckets plus
// _sum and _count series.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value)
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for _, b := range s.Hist {
				cum += b.Count
				// Our buckets hold v < High; Prometheus le is inclusive,
				// so the boundary is High-1 (bucket 0 holds v <= 0).
				le := b.High - 1
				if b.High == 0 {
					le = 0
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, s.Count, name, s.Sum, name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric grammar.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
