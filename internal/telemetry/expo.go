package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteProm writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4), so a long-running sweep can be
// scraped live through an HTTP /metrics endpoint. Metric names are
// sanitized to the Prometheus grammar (every character outside
// [a-zA-Z0-9_:] becomes '_'); counters and gauges expose their value
// directly, histograms expose cumulative le-labelled buckets plus
// _sum and _count series. Fixed-bound histograms additionally expose
// their deterministic _p50/_p90/_p99 quantile gauges and a _mean gauge
// (guarded: a non-finite mean is never emitted).
func (r *Registry) WriteProm(w io.Writer) error {
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		var err error
		switch s.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, s.Value)
		case "fixed_histogram":
			if err = writePromFixed(w, name, s); err != nil {
				return err
			}
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			var cum int64
			for _, b := range s.Hist {
				cum += b.Count
				// Our buckets hold v < High; Prometheus le is inclusive,
				// so the boundary is High-1 (bucket 0 holds v <= 0).
				le := b.High - 1
				if b.High == 0 {
					le = 0
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				name, s.Count, name, s.Sum, name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromFixed exposes one fixed-bound histogram: le labels are the
// exact bucket bounds (inclusive upper bounds, matching Prometheus
// semantics directly), and the deterministic quantiles ride along as
// plain gauges.
func writePromFixed(w io.Writer, name string, s Snapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for _, b := range s.Hist {
		cum += b.Count
		// The overflow bucket snapshots with High 0; it is covered by
		// the +Inf series below.
		if b.High == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.High, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count); err != nil {
		return err
	}
	for _, q := range []struct {
		suffix string
		v      int64
	}{{"p50", s.P50}, {"p90", s.P90}, {"p99", s.P99}} {
		if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %d\n",
			name, q.suffix, name, q.suffix, q.v); err != nil {
			return err
		}
	}
	if isFinite(s.Mean) {
		if _, err := fmt.Fprintf(w, "# TYPE %s_mean gauge\n%s_mean %g\n", name, name, s.Mean); err != nil {
			return err
		}
	}
	return nil
}

// isFinite guards float series: NaN and ±Inf values (a mean over zero
// observations, an overflowed sum) are dropped rather than emitted as
// unparsable sample lines.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// promName maps a registry name onto the Prometheus metric grammar.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
