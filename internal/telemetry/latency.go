package telemetry

import "sync/atomic"

// LatencyBounds are the default fixed bucket upper bounds for latency
// histograms, in microseconds: 50µs to 10s on a 1-2.5-5 ladder. Fixed
// bounds (rather than the log2 Histogram) make the exported quantiles
// deterministic functions of the observation multiset — two runs that
// observe the same values report the same p50/p90/p99.
var LatencyBounds = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// FixedHistogram accumulates a distribution in caller-fixed bucket
// bounds with atomic updates. Bucket i counts observations v with
// v <= bounds[i] (and v > bounds[i-1]); one overflow bucket catches the
// rest. Quantiles are estimated as the upper bound of the bucket where
// the cumulative count crosses the rank, which is deterministic and
// never interpolates.
type FixedHistogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// NewFixedHistogram returns a standalone histogram over the given
// strictly ascending upper bounds (nil selects LatencyBounds).
func NewFixedHistogram(bounds []int64) *FixedHistogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: fixed histogram bounds must be strictly ascending")
		}
	}
	return &FixedHistogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *FixedHistogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
}

// Count returns the number of observations.
func (h *FixedHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *FixedHistogram) Sum() int64 { return h.sum.Load() }

// Bounds returns the bucket upper bounds (shared; do not modify).
func (h *FixedHistogram) Bounds() []int64 { return h.bounds }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the rank-⌈q·count⌉ observation. An empty histogram
// returns 0 (never NaN); ranks landing in the overflow bucket return
// the last bound (the histogram cannot resolve beyond it).
func (h *FixedHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 || q <= 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *FixedHistogram) snapshot(name string) Snapshot {
	s := Snapshot{
		Name: name, Kind: "fixed_histogram",
		Count: h.Count(), Sum: h.Sum(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	low := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		high := int64(0)
		if i < len(h.bounds) {
			high = h.bounds[i]
		}
		if n != 0 {
			// Overflow bucket exports High 0 — WriteProm maps it to +Inf.
			s.Hist = append(s.Hist, Bucket{Low: low, High: high, Count: n})
		}
		low = high
	}
	return s
}

// FixedHistogram returns the named fixed-bound histogram, creating it
// over bounds on first use (nil selects LatencyBounds; the bounds of an
// existing histogram are kept).
func (r *Registry) FixedHistogram(name string, bounds []int64) *FixedHistogram {
	return lookup(r, name, func() *FixedHistogram { return NewFixedHistogram(bounds) })
}
