package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// Table is one rendered experiment table captured as data. Cells are the
// exact strings of the text rendering, so the JSON export and the text
// tables can never disagree.
type Table struct {
	Caption string     `json:"caption,omitempty"`
	Header  []string   `json:"header"`
	Rows    [][]string `json:"rows"`
}

// ExperimentResult is the machine-readable form of one experiment
// (one figure or table of the paper): every table it rendered, in order.
type ExperimentResult struct {
	ID         string   `json:"id"`
	Title      string   `json:"title"`
	Tables     []*Table `json:"tables"`
	ElapsedSec float64  `json:"elapsed_sec,omitempty"`
}

// NewExperimentResult returns an empty result document.
func NewExperimentResult(id, title string) *ExperimentResult {
	return &ExperimentResult{ID: id, Title: title}
}

// AddTable records one rendered table (cells are copied).
func (r *ExperimentResult) AddTable(caption string, header []string, rows [][]string) {
	t := &Table{Caption: caption, Header: append([]string(nil), header...)}
	for _, row := range rows {
		t.Rows = append(t.Rows, append([]string(nil), row...))
	}
	r.Tables = append(r.Tables, t)
}

// WriteJSONFile marshals v with indentation and writes it to path,
// creating parent directories as needed.
func WriteJSONFile(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
