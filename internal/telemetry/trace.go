package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value span attribute; it lands in the trace event's
// args object.
type Attr struct {
	Key   string
	Value string
}

// String builds an attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Event is one Chrome trace_event entry (the subset the exporter emits:
// complete events, ph "X", timestamps in microseconds).
//
// The format is documented in the Trace Event Format spec; files load in
// chrome://tracing and https://ui.perfetto.dev.
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds since trace start
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Tracer records spans. All methods are safe for concurrent use; spans
// recorded from one goroutine nest by time containment when viewed.
type Tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	events []Event
}

// NewTracer returns a tracer whose timestamps are relative to now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// Span is one in-flight operation; End records it. A nil Span (from a
// disabled tracer) is a no-op, so callers never need to check.
type Span struct {
	t     *Tracer
	name  string
	args  map[string]string
	start time.Time
}

// Start opens a span. Call End on the returned span when the operation
// completes.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, name: name, start: time.Now()}
	if len(attrs) > 0 {
		s.args = make(map[string]string, len(attrs))
		for _, a := range attrs {
			s.args[a.Key] = a.Value
		}
	}
	return s
}

// End records the span as a complete ("X") trace event.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	end := time.Now()
	s.t.mu.Lock()
	s.t.events = append(s.t.events, Event{
		Name: s.name,
		Ph:   "X",
		TS:   float64(s.start.Sub(s.t.epoch).Nanoseconds()) / 1e3,
		Dur:  float64(end.Sub(s.start).Nanoseconds()) / 1e3,
		PID:  1,
		TID:  1,
		Args: s.args,
	})
	s.t.mu.Unlock()
}

// Annotate adds an attribute to an open span.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.t == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
}

// Events returns a copy of the recorded events in start-time order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// DurationsByName sums recorded span durations per span name.
func (t *Tracer) DurationsByName() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, e := range t.Events() {
		out[e.Name] += time.Duration(e.Dur * 1e3)
	}
	return out
}

// WriteChromeTrace writes events as a Chrome trace_event JSON document
// (object form, loadable in chrome://tracing / Perfetto). Any event
// producer can use it; the pipeline flight recorder exports its
// per-stage lanes through the same writer the span tracer uses.
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}{events, "ms"})
}

// WriteChromeTrace writes every recorded span as a Chrome trace_event
// JSON document.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Events())
}

// globalTracer is consulted by StartSpan; nil (the default) makes every
// span a no-op so instrumented code pays one atomic load when tracing is
// off.
var globalTracer atomic.Pointer[Tracer]

// SetGlobalTracer installs (or, with nil, removes) the process tracer.
func SetGlobalTracer(t *Tracer) { globalTracer.Store(t) }

// GlobalTracer returns the installed tracer, or nil.
func GlobalTracer() *Tracer { return globalTracer.Load() }

// StartSpan opens a span on the global tracer (a no-op span when tracing
// is disabled).
func StartSpan(name string, attrs ...Attr) *Span {
	return globalTracer.Load().Start(name, attrs...)
}
