package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestFixedHistogramQuantiles(t *testing.T) {
	h := NewFixedHistogram([]int64{10, 20, 50, 100})

	// Empty: quantiles are 0, never NaN.
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty p99 = %d, want 0", got)
	}

	// 100 observations, one per value 1..100: deterministic ranks.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.10, 10},  // rank 10 -> first bucket (<=10)
		{0.50, 50},  // rank 50 -> third bucket (<=50)
		{0.90, 100}, // rank 90 -> fourth bucket (<=100)
		{0.99, 100},
		{1.00, 100},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("q=%v: got %d, want %d", tc.q, got, tc.want)
		}
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count/sum = %d/%d, want 100/5050", h.Count(), h.Sum())
	}

	// Overflow observations resolve to the last bound, not +Inf or 0.
	h.Observe(10_000)
	if got := h.Quantile(1.0); got != 100 {
		t.Fatalf("overflow p100 = %d, want last bound 100", got)
	}
}

func TestFixedHistogramDeterministic(t *testing.T) {
	// Same multiset, different observation order -> identical snapshots.
	a := NewFixedHistogram(nil)
	b := NewFixedHistogram(nil)
	vals := []int64{3, 70, 70, 900, 12_000, 450_000, 3, 42}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	sa, sb := a.snapshot("x"), b.snapshot("x")
	if sa.P50 != sb.P50 || sa.P90 != sb.P90 || sa.P99 != sb.P99 || sa.Count != sb.Count || sa.Sum != sb.Sum {
		t.Fatalf("order-dependent snapshots:\n%+v\n%+v", sa, sb)
	}
	if len(sa.Hist) != len(sb.Hist) {
		t.Fatalf("bucket count differs: %d vs %d", len(sa.Hist), len(sb.Hist))
	}
}

func TestFixedHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewFixedHistogram([]int64{10, 10})
}

func TestRegistryFixedHistogramReuse(t *testing.T) {
	r := NewRegistry()
	h1 := r.FixedHistogram("lat", []int64{1, 2, 3})
	h2 := r.FixedHistogram("lat", nil) // existing bounds kept
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := int64(0); j < 1000; j++ {
				r.FixedHistogram("lat", nil).Observe(j % 4)
			}
		}()
	}
	wg.Wait()
	if h1.Count() != 8000 {
		t.Fatalf("concurrent observes lost updates: %d != 8000", h1.Count())
	}
}

func TestFixedHistogramProm(t *testing.T) {
	r := NewRegistry()
	h := r.FixedHistogram("http.request_latency_us", []int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(50_000) // overflow

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_request_latency_us histogram\n",
		`http_request_latency_us_bucket{le="10"} 1` + "\n",
		`http_request_latency_us_bucket{le="100"} 2` + "\n",
		`http_request_latency_us_bucket{le="+Inf"} 3` + "\n",
		"http_request_latency_us_sum 50055\n",
		"http_request_latency_us_count 3\n",
		"http_request_latency_us_p50 100\n",
		"http_request_latency_us_p90 1000\n",
		"http_request_latency_us_p99 1000\n",
		"http_request_latency_us_mean 16685\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The overflow bucket must not leak a le="0" series.
	if strings.Contains(out, `le="0"`) {
		t.Errorf("overflow bucket leaked a le=\"0\" series:\n%s", out)
	}
}
