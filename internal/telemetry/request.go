package telemetry

import "context"

// requestIDKey is the private context key for request-scoped IDs.
type requestIDKey struct{}

// WithRequestID tags ctx with a request-scoped ID. Services assign one
// per inbound call (simd's access-log middleware does) and the ID rides
// the context through the jobs scheduler into its spans, so a slow
// query or a shed batch can be traced back to the request that caused
// it.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
