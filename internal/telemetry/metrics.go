// Package telemetry is the repo's zero-dependency observability layer:
// a metrics registry (counters, gauges, log-scaled histograms), span
// tracing with Chrome trace_event export, a generic ring buffer for
// last-N event capture, and machine-readable experiment results.
//
// Everything here is stdlib-only and safe for concurrent use unless a
// type documents otherwise. Hot paths (simulator inner loops) should
// prefer RegisterFunc over per-event counter updates: a func gauge reads
// an existing field at snapshot time and costs nothing during the run.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with atomic updates.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are ignored; counters only go up).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value with atomic updates.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per power of two: bucket i holds observed
// values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i. Bucket 0
// holds zero and negative observations.
const histBuckets = 65

// Histogram accumulates a distribution in log2-scaled buckets, plus
// count/sum/min/max, all with atomic updates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// newHistogram initializes the min/max sentinels; histograms must be
// created through a Registry (or NewHistogram) rather than as zero values.
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// NewHistogram returns a standalone histogram (outside any registry).
func NewHistogram() *Histogram { return newHistogram() }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= old || h.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count values
// observed in [Low, High).
type Bucket struct {
	Low   int64 `json:"low"`
	High  int64 `json:"high"`
	Count int64 `json:"count"`
}

// Snapshot is the exported state of one metric.
type Snapshot struct {
	Name  string   `json:"name"`
	Kind  string   `json:"kind"` // counter, gauge, histogram, fixed_histogram
	Value int64    `json:"value,omitempty"`
	Count int64    `json:"count,omitempty"`
	Sum   int64    `json:"sum,omitempty"`
	Min   int64    `json:"min,omitempty"`
	Max   int64    `json:"max,omitempty"`
	Mean  float64  `json:"mean,omitempty"`
	Hist  []Bucket `json:"buckets,omitempty"`
	// P50/P90/P99 are filled for fixed_histogram metrics only: fixed
	// bucket bounds make them deterministic (see FixedHistogram).
	P50 int64 `json:"p50,omitempty"`
	P90 int64 `json:"p90,omitempty"`
	P99 int64 `json:"p99,omitempty"`
}

type metric interface {
	snapshot(name string) Snapshot
}

func (c *Counter) snapshot(name string) Snapshot {
	return Snapshot{Name: name, Kind: "counter", Value: c.Value()}
}

func (g *Gauge) snapshot(name string) Snapshot {
	return Snapshot{Name: name, Kind: "gauge", Value: g.Value()}
}

func (h *Histogram) snapshot(name string) Snapshot {
	s := Snapshot{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
	if s.Count > 0 {
		s.Min, s.Max = h.min.Load(), h.max.Load()
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Low = 1 << (i - 1)
			if i < 64 {
				b.High = 1 << i
			} else {
				b.High = math.MaxInt64
			}
		}
		s.Hist = append(s.Hist, b)
	}
	return s
}

// funcGauge reads an external value at snapshot time; it costs nothing
// while the instrumented code runs.
type funcGauge func() int64

func (f funcGauge) snapshot(name string) Snapshot {
	return Snapshot{Name: name, Kind: "gauge", Value: f()}
}

// Registry is a named collection of metrics.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

func lookup[T metric](r *Registry, name string, make func() T) T {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if m, ok = r.metrics[name]; !ok {
			m = make()
			r.metrics[name] = m
		}
		r.mu.Unlock()
	}
	t, ok := m.(T)
	if !ok {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
	}
	return t
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return lookup(r, name, newHistogram)
}

// RegisterFunc publishes fn as a read-only gauge under name, replacing
// any previous registration of that name.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.metrics[name] = funcGauge(fn)
	r.mu.Unlock()
}

// Snapshot returns every metric's state, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Snapshot, 0, len(names))
	for _, n := range names {
		out = append(out, r.metrics[n].snapshot(n))
	}
	r.mu.RUnlock()
	return out
}

// WriteJSON writes the snapshot as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Snapshot `json:"metrics"`
	}{r.Snapshot()})
}

// defaultRegistry is the process-wide registry package-level helpers use.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
