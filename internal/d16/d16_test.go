package d16

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// sampleInstrs returns a representative set of encodable D16 instructions.
func sampleInstrs() []isa.Instr {
	r, f := isa.R, isa.F
	return []isa.Instr{
		isa.MakeNop(),
		{Op: isa.LD, Rd: r(4), Rs1: r(2), Imm: 8},
		{Op: isa.LD, Rd: r(15), Rs1: r(13), Imm: 124},
		{Op: isa.ST, Rd: r(3), Rs1: r(2), Imm: 0},
		{Op: isa.LDB, Rd: r(5), Rs1: r(6)},
		{Op: isa.LDBU, Rd: r(5), Rs1: r(6)},
		{Op: isa.LDH, Rd: r(5), Rs1: r(6)},
		{Op: isa.LDHU, Rd: r(5), Rs1: r(6)},
		{Op: isa.STB, Rd: r(5), Rs1: r(6)},
		{Op: isa.STH, Rd: r(5), Rs1: r(6)},
		{Op: isa.MVI, Rd: r(7), Imm: -256, HasImm: true},
		{Op: isa.MVI, Rd: r(7), Imm: 255, HasImm: true},
		{Op: isa.MV, Rd: r(8), Rs1: r(9)},
		{Op: isa.ADD, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.SUB, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.AND, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.OR, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.XOR, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.SHL, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.SHR, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.SHRA, Rd: r(4), Rs1: r(4), Rs2: r(5)},
		{Op: isa.NEG, Rd: r(4), Rs1: r(4)},
		{Op: isa.INV, Rd: r(4), Rs1: r(4)},
		{Op: isa.ADDI, Rd: r(4), Rs1: r(4), Imm: 31, HasImm: true},
		{Op: isa.ADDI, Rd: r(4), Rs1: r(4), Imm: 0, HasImm: true},
		{Op: isa.SUBI, Rd: r(4), Rs1: r(4), Imm: 16, HasImm: true},
		{Op: isa.SHLI, Rd: r(4), Rs1: r(4), Imm: 17, HasImm: true},
		{Op: isa.SHRI, Rd: r(4), Rs1: r(4), Imm: 1, HasImm: true},
		{Op: isa.SHRAI, Rd: r(4), Rs1: r(4), Imm: 31, HasImm: true},
		{Op: isa.CMP, Cond: isa.LT, Rd: isa.RegCC, Rs1: r(4), Rs2: r(5)},
		{Op: isa.CMP, Cond: isa.NE, Rd: isa.RegCC, Rs1: r(14), Rs2: r(15)},
		{Op: isa.BR, Imm: -2048},
		{Op: isa.BR, Imm: 2046},
		{Op: isa.BZ, Rs1: isa.RegCC, Imm: 100},
		{Op: isa.BNZ, Rs1: isa.RegCC, Imm: -100},
		{Op: isa.J, Rs1: r(6)},
		{Op: isa.JZ, Rs1: r(6)},
		{Op: isa.JNZ, Rs1: r(6)},
		{Op: isa.JL, Rs1: r(6)},
		{Op: isa.RDSR, Rd: r(9)},
		{Op: isa.TRAP, Imm: 0, HasImm: true},
		{Op: isa.TRAP, Imm: 255, HasImm: true},
		{Op: isa.FADDS, Rd: f(2), Rs1: f(2), Rs2: f(3)},
		{Op: isa.FSUBD, Rd: f(2), Rs1: f(2), Rs2: f(3)},
		{Op: isa.FMULS, Rd: f(0), Rs1: f(0), Rs2: f(15)},
		{Op: isa.FDIVD, Rd: f(1), Rs1: f(1), Rs2: f(1)},
		{Op: isa.FNEGS, Rd: f(4), Rs1: f(4)},
		{Op: isa.FNEGD, Rd: f(4), Rs1: f(4)},
		{Op: isa.FCMPS, Cond: isa.LT, Rs1: f(1), Rs2: f(2)},
		{Op: isa.FCMPD, Cond: isa.EQ, Rs1: f(1), Rs2: f(2)},
		{Op: isa.CVTSISF, Rd: f(3), Rs1: r(4)},
		{Op: isa.CVTSIDF, Rd: f(3), Rs1: r(4)},
		{Op: isa.CVTSFDF, Rd: f(3), Rs1: f(4)},
		{Op: isa.CVTDFSF, Rd: f(3), Rs1: f(4)},
		{Op: isa.CVTDFSI, Rd: r(3), Rs1: f(4)},
		{Op: isa.CVTSFSI, Rd: r(3), Rs1: f(4)},
		{Op: isa.MVFL, Rd: f(3), Rs1: r(4)},
		{Op: isa.MVFH, Rd: f(3), Rs1: r(4)},
		{Op: isa.MFFL, Rd: r(3), Rs1: f(4)},
		{Op: isa.MFFH, Rd: r(3), Rs1: f(4)},
	}
}

func TestRoundTrip(t *testing.T) {
	const pc = 0x1000
	for _, in := range sampleInstrs() {
		word, err := Encode(in, pc)
		if err != nil {
			t.Errorf("Encode(%v): %v", in, err)
			continue
		}
		got, err := Decode(word, pc)
		if err != nil {
			t.Errorf("Decode(Encode(%v)) = %#04x: %v", in, word, err)
			continue
		}
		if got != in {
			t.Errorf("round trip %v -> %#04x -> %v", in, word, got)
		}
	}
}

func TestLDCRoundTrip(t *testing.T) {
	// LDC displacements are relative to the word-aligned PC; test both PC
	// alignments and the extremes of the reach.
	for _, pc := range []uint32{0x1000, 0x1002} {
		base := pc &^ 3
		for _, target := range []uint32{base - 4096, base, base + 4092} {
			in := isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg,
				Imm: int32(target) - int32(pc)}
			word, err := Encode(in, pc)
			if err != nil {
				t.Fatalf("Encode(ldc @%#x -> %#x): %v", pc, target, err)
			}
			got, err := Decode(word, pc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != in {
				t.Errorf("ldc round trip @%#x: %v -> %v", pc, in, got)
			}
		}
	}
}

func TestEncodeRejections(t *testing.T) {
	r := isa.R
	cases := []struct {
		name string
		in   isa.Instr
	}{
		{"three-address add", isa.Instr{Op: isa.ADD, Rd: r(4), Rs1: r(5), Rs2: r(6)}},
		{"register 16", isa.Instr{Op: isa.MV, Rd: isa.R(16), Rs1: r(1)}},
		{"wide displacement", isa.Instr{Op: isa.LD, Rd: r(4), Rs1: r(2), Imm: 128}},
		{"negative displacement", isa.Instr{Op: isa.LD, Rd: r(4), Rs1: r(2), Imm: -4}},
		{"unaligned displacement", isa.Instr{Op: isa.LD, Rd: r(4), Rs1: r(2), Imm: 6}},
		{"subword displacement", isa.Instr{Op: isa.LDB, Rd: r(4), Rs1: r(2), Imm: 4}},
		{"wide alu imm", isa.Instr{Op: isa.ADDI, Rd: r(4), Rs1: r(4), Imm: 32, HasImm: true}},
		{"wide mvi", isa.Instr{Op: isa.MVI, Rd: r(4), Imm: 256, HasImm: true}},
		{"cmp immediate", isa.Instr{Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC, Rs1: r(4), Imm: 1, HasImm: true}},
		{"cmp gt", isa.Instr{Op: isa.CMP, Cond: isa.GT, Rd: isa.RegCC, Rs1: r(4), Rs2: r(5)}},
		{"cmp to r5", isa.Instr{Op: isa.CMP, Cond: isa.EQ, Rd: r(5), Rs1: r(4), Rs2: r(5)}},
		{"bz on r4", isa.Instr{Op: isa.BZ, Rs1: r(4), Imm: 4}},
		{"far branch", isa.Instr{Op: isa.BR, Imm: 4096}},
		{"andi", isa.Instr{Op: isa.ANDI, Rd: r(4), Rs1: r(4), Imm: 1, HasImm: true}},
		{"mvhi", isa.Instr{Op: isa.MVHI, Rd: r(4), Imm: 1, HasImm: true}},
		{"j-type jump", isa.Instr{Op: isa.J, Imm: 0x100, HasImm: true}},
	}
	for _, tc := range cases {
		if _, err := Encode(tc.in, 0x1000); err == nil {
			t.Errorf("%s: expected encode error for %v", tc.name, tc.in)
		}
	}
}

// TestDecodeTotal decodes every possible 16-bit word and checks that the
// decoder never panics, and that anything that decodes successfully is
// semantically canonical: re-encoding it and decoding again yields the
// same instruction. (Bit-exact re-encoding is not required because
// decoders may ignore unused operand fields.)
func TestDecodeTotal(t *testing.T) {
	const pc = 0x2000
	decoded := 0
	for w := 0; w <= 0xFFFF; w++ {
		in, err := Decode(uint16(w), pc)
		if err != nil {
			continue
		}
		decoded++
		back, err := Encode(in, pc)
		if err != nil {
			t.Fatalf("word %#04x decoded to %v which does not re-encode: %v", w, in, err)
		}
		again, err := Decode(back, pc)
		if err != nil {
			t.Fatalf("re-encoded word %#04x does not decode: %v", back, err)
		}
		if again != in {
			t.Fatalf("word %#04x -> %v -> %#04x -> %v (not canonical)", w, in, back, again)
		}
	}
	if decoded < 0x4000 {
		t.Errorf("only %d of 65536 words decode; encoding space suspiciously sparse", decoded)
	}
}

func TestRandomWordsDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		Decode(uint16(rng.Uint32()), uint32(rng.Uint32())&^1)
	}
}
