// Package d16 implements the binary encoding of the 16-bit D16 instruction
// set (Figure 1 of the paper). D16 has five instruction formats:
//
//	MEM   [15]=1   [14:13]=op  [12:8]=off5  [7:4]=ry  [3:0]=rx
//	      word load/store: rx <-> mem[ry + 4*off5]; offsets limited to
//	      124 bytes ("word modes limited to 128")
//	REG   [15:14]=01  [13:8]=opcode6  [7:4]=ry/imm4  [3:0]=rx
//	      two-address ALU/FP/compare/sub-word-memory/jump operations;
//	      5-bit ALU immediates borrow their top bit from the opcode
//	MVI   [15:13]=001  [12:4]=imm9 (signed)  [3:0]=rx
//	BR    [15:13]=000  [12:11]=op (0 br, 1 bz, 2 bnz)  [10:0]=off11
//	      signed instruction-unit offset, reach ±1024 instructions
//	LDC   [15:13]=000  [12:11]=3  [10:0]=off11
//	      r0 <- mem[(pc & ^3) + 4*off11 (signed)]: the PC-relative
//	      literal-pool load, reach ±4 KiB
//
// Sub-word loads and stores live in the REG format and take no
// displacement ("address for subword modes is not offsettable").
// Compares have the fixed implicit destination r0, and bz/bnz implicitly
// test r0.
package d16

import (
	"fmt"

	"repro/internal/isa"
)

// Bytes is the fixed D16 instruction size.
const Bytes = 2

// Variant selects optional encoding extensions.
type Variant struct {
	// Cmp8 re-purposes one MVI bit (the paper's Section 3.3.3 proposal):
	// MVI shrinks to a signed 8-bit immediate and the freed encodings
	// become an 8-bit unsigned compare-equal immediate, "cmp.eq r0, rx, imm".
	//
	//	MVI/CMPEQI   001 sel imm8 rx    sel=0: rx = sext(imm8)
	//	                                sel=1: r0 = (rx == imm8)
	Cmp8 bool
}

// REG-format opcode assignments (6 bits). Immediate ALU operations occupy
// opcode pairs: the opcode's low bit supplies bit 4 of the 5-bit immediate.
const (
	opNop   = 0
	opMv    = 1
	opAdd   = 2
	opSub   = 3
	opAnd   = 4
	opOr    = 5
	opXor   = 6
	opShl   = 7
	opShr   = 8
	opShra  = 9
	opNeg   = 10
	opInv   = 11
	opAddi  = 12 // 12,13
	opSubi  = 14 // 14,15
	opShli  = 16 // 16,17
	opShri  = 18 // 18,19
	opShrai = 20 // 20,21
	opLdh   = 22
	opLdhu  = 23
	opSth   = 24
	opLdb   = 25
	opLdbu  = 26
	opStb   = 27
	opCmpLT = 28 // 28..33: lt ltu le leu eq ne
	opMisc  = 34 // imm4 selects: 0 j, 1 jz, 2 jnz, 3 jl, 4 rdsr
	opTrap  = 35 // code = imm4<<4 | rx
	opFAddS = 36 // 36..40: add sub mul div neg (.sf)
	opFAddD = 41 // 41..45: add sub mul div neg (.df)
	opFCmpS = 46 // 46..48: lt le eq (.sf)
	opFCmpD = 49 // 49..51: lt le eq (.df)
	opCvt   = 52 // 52..57: si2sf si2df sf2df df2sf df2si sf2si
	opMvfl  = 58
	opMvfh  = 59
	opMffl  = 60
	opMffh  = 61
	opFmv   = 62
)

const (
	miscJ    = 0
	miscJz   = 1
	miscJnz  = 2
	miscJl   = 3
	miscRdsr = 4
)

// EncodeError describes an instruction that the D16 format cannot express.
type EncodeError struct {
	In  isa.Instr
	Why string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("d16: cannot encode %q: %s", e.In.String(), e.Why)
}

func bad(in isa.Instr, why string, args ...any) error {
	return &EncodeError{In: in, Why: fmt.Sprintf(why, args...)}
}

func reg4(in isa.Instr, r isa.Reg) (uint16, error) {
	if !r.Valid() {
		return 0, bad(in, "missing register operand")
	}
	if r.Num() > 15 {
		return 0, bad(in, "register %s not addressable in 4 bits", r)
	}
	return uint16(r.Num()), nil
}

func regRR(in isa.Instr, opcode uint16) (uint16, error) {
	rx, err := reg4(in, in.Rd)
	if err != nil {
		return 0, err
	}
	ry, err := reg4(in, in.Rs1)
	if err != nil {
		return 0, err
	}
	return encREG(opcode, ry, rx), nil
}

func encREG(opcode, ry, rx uint16) uint16 {
	return 1<<14 | opcode<<8 | ry<<4 | rx
}

// Encode converts one canonical instruction into its 16-bit D16 encoding
// (base variant). pc is the address of the instruction itself; it is
// needed for the PC-relative BR and LDC forms whose canonical Imm holds a
// byte displacement from the instruction address.
func Encode(in isa.Instr, pc uint32) (uint16, error) {
	return EncodeV(in, pc, Variant{})
}

// EncodeV encodes under an explicit variant.
func EncodeV(in isa.Instr, pc uint32, v Variant) (uint16, error) {
	switch in.Op {
	case isa.NOP:
		return encREG(opNop, 0, 0), nil

	case isa.LD, isa.ST:
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		if in.Imm < 0 || in.Imm > 124 || in.Imm%4 != 0 {
			return 0, bad(in, "word displacement %d out of range [0,124]", in.Imm)
		}
		op := uint16(0)
		if in.Op == isa.ST {
			op = 1
		}
		return 1<<15 | op<<13 | uint16(in.Imm/4)<<8 | ry<<4 | rx, nil

	case isa.LDH, isa.LDHU, isa.STH, isa.LDB, isa.LDBU, isa.STB:
		if in.Imm != 0 {
			return 0, bad(in, "subword modes are not offsettable")
		}
		var opc uint16
		switch in.Op {
		case isa.LDH:
			opc = opLdh
		case isa.LDHU:
			opc = opLdhu
		case isa.STH:
			opc = opSth
		case isa.LDB:
			opc = opLdb
		case isa.LDBU:
			opc = opLdbu
		case isa.STB:
			opc = opStb
		}
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		return encREG(opc, ry, rx), nil

	case isa.LDC:
		if in.Rd != isa.RegCC {
			return 0, bad(in, "ldc destination is implicitly r0")
		}
		base := pc &^ 3
		target := int64(pc) + int64(in.Imm)
		if target%4 != 0 {
			return 0, bad(in, "ldc literal not word aligned")
		}
		woff := (target - int64(base)) / 4
		if woff < -1024 || woff > 1023 {
			return 0, bad(in, "ldc literal displacement %d words out of range", woff)
		}
		return 3<<11 | uint16(woff)&0x7FF, nil

	case isa.BR, isa.BZ, isa.BNZ:
		if in.Op != isa.BR && in.Rs1 != isa.RegCC {
			return 0, bad(in, "bz/bnz implicitly test r0, got %s", in.Rs1)
		}
		if in.Imm%Bytes != 0 {
			return 0, bad(in, "branch displacement %d not instruction aligned", in.Imm)
		}
		ioff := in.Imm / Bytes
		if ioff < -1024 || ioff > 1023 {
			return 0, bad(in, "branch displacement %d instructions out of range", ioff)
		}
		var op uint16
		switch in.Op {
		case isa.BZ:
			op = 1
		case isa.BNZ:
			op = 2
		}
		return op<<11 | uint16(ioff)&0x7FF, nil

	case isa.J, isa.JZ, isa.JNZ, isa.JL:
		if in.HasImm {
			return 0, bad(in, "D16 jumps are register-absolute only")
		}
		rx, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		var sub uint16
		switch in.Op {
		case isa.J:
			sub = miscJ
		case isa.JZ:
			sub = miscJz
		case isa.JNZ:
			sub = miscJnz
		case isa.JL:
			sub = miscJl
		}
		return encREG(opMisc, sub, rx), nil

	case isa.RDSR:
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		return encREG(opMisc, miscRdsr, rx), nil

	case isa.TRAP:
		if in.Imm < 0 || in.Imm > 255 {
			return 0, bad(in, "trap code %d out of range [0,255]", in.Imm)
		}
		return encREG(opTrap, uint16(in.Imm)>>4, uint16(in.Imm)&0xF), nil

	case isa.MVI:
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		if v.Cmp8 {
			if in.Imm < -128 || in.Imm > 127 {
				return 0, bad(in, "mvi immediate %d out of signed 8-bit range (cmp8 variant)", in.Imm)
			}
			return 1<<13 | (uint16(in.Imm)&0xFF)<<4 | rx, nil
		}
		if in.Imm < -256 || in.Imm > 255 {
			return 0, bad(in, "mvi immediate %d out of signed 9-bit range", in.Imm)
		}
		return 1<<13 | (uint16(in.Imm)&0x1FF)<<4 | rx, nil

	case isa.MV:
		return regRR(in, opMv)

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SHRA:
		if in.Rd != in.Rs1 {
			return 0, bad(in, "two-address operation requires rd == rs1")
		}
		var opc uint16
		switch in.Op {
		case isa.ADD:
			opc = opAdd
		case isa.SUB:
			opc = opSub
		case isa.AND:
			opc = opAnd
		case isa.OR:
			opc = opOr
		case isa.XOR:
			opc = opXor
		case isa.SHL:
			opc = opShl
		case isa.SHR:
			opc = opShr
		case isa.SHRA:
			opc = opShra
		}
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs2)
		if err != nil {
			return 0, err
		}
		return encREG(opc, ry, rx), nil

	case isa.NEG, isa.INV:
		if in.Rd != in.Rs1 {
			return 0, bad(in, "unary operation is in-place (rd == rs1)")
		}
		opc := uint16(opNeg)
		if in.Op == isa.INV {
			opc = opInv
		}
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		return encREG(opc, 0, rx), nil

	case isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SHRAI:
		if in.Rd != in.Rs1 {
			return 0, bad(in, "two-address operation requires rd == rs1")
		}
		if in.Imm < 0 || in.Imm > 31 {
			return 0, bad(in, "immediate %d out of unsigned 5-bit range", in.Imm)
		}
		var opc uint16
		switch in.Op {
		case isa.ADDI:
			opc = opAddi
		case isa.SUBI:
			opc = opSubi
		case isa.SHLI:
			opc = opShli
		case isa.SHRI:
			opc = opShri
		case isa.SHRAI:
			opc = opShrai
		}
		opc |= uint16(in.Imm) >> 4 // bit 4 of the immediate rides in the opcode
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		return encREG(opc, uint16(in.Imm)&0xF, rx), nil

	case isa.CMP:
		if in.Rd != isa.RegCC {
			return 0, bad(in, "compare destination is implicitly r0")
		}
		if in.HasImm {
			if !v.Cmp8 || in.Cond != isa.EQ {
				return 0, bad(in, "D16 compare operands must both be registers")
			}
			if in.Imm < 0 || in.Imm > 255 {
				return 0, bad(in, "cmp.eq immediate %d out of unsigned 8-bit range", in.Imm)
			}
			rx, err := reg4(in, in.Rs1)
			if err != nil {
				return 0, err
			}
			return 1<<13 | 1<<12 | uint16(in.Imm)<<4 | rx, nil
		}
		if !in.Cond.D16Legal() {
			return 0, bad(in, "condition %s not available on D16", in.Cond)
		}
		opc := uint16(opCmpLT) + uint16(in.Cond-isa.LT)
		rx, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs2)
		if err != nil {
			return 0, err
		}
		return encREG(opc, ry, rx), nil

	case isa.FADDS, isa.FSUBS, isa.FMULS, isa.FDIVS, isa.FNEGS,
		isa.FADDD, isa.FSUBD, isa.FMULD, isa.FDIVD, isa.FNEGD:
		if in.Rd != in.Rs1 {
			return 0, bad(in, "two-address FP operation requires rd == rs1")
		}
		var opc uint16
		switch in.Op {
		case isa.FADDS:
			opc = opFAddS
		case isa.FSUBS:
			opc = opFAddS + 1
		case isa.FMULS:
			opc = opFAddS + 2
		case isa.FDIVS:
			opc = opFAddS + 3
		case isa.FNEGS:
			opc = opFAddS + 4
		case isa.FADDD:
			opc = opFAddD
		case isa.FSUBD:
			opc = opFAddD + 1
		case isa.FMULD:
			opc = opFAddD + 2
		case isa.FDIVD:
			opc = opFAddD + 3
		case isa.FNEGD:
			opc = opFAddD + 4
		}
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry := uint16(0)
		if in.Op != isa.FNEGS && in.Op != isa.FNEGD {
			ry, err = reg4(in, in.Rs2)
			if err != nil {
				return 0, err
			}
		}
		return encREG(opc, ry, rx), nil

	case isa.FCMPS, isa.FCMPD:
		base := uint16(opFCmpS)
		if in.Op == isa.FCMPD {
			base = opFCmpD
		}
		var sub uint16
		switch in.Cond {
		case isa.LT:
			sub = 0
		case isa.LE:
			sub = 1
		case isa.EQ:
			sub = 2
		default:
			return 0, bad(in, "FP compare condition %s not encodable (use lt/le/eq)", in.Cond)
		}
		rx, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs2)
		if err != nil {
			return 0, err
		}
		return encREG(base+sub, ry, rx), nil

	case isa.CVTSISF, isa.CVTSIDF, isa.CVTSFDF, isa.CVTDFSF, isa.CVTDFSI, isa.CVTSFSI:
		opc := uint16(opCvt) + uint16(in.Op-isa.CVTSISF)
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		return encREG(opc, ry, rx), nil

	case isa.MVFL, isa.MVFH, isa.MFFL, isa.MFFH, isa.FMV:
		var opc uint16
		switch in.Op {
		case isa.MVFL:
			opc = opMvfl
		case isa.MVFH:
			opc = opMvfh
		case isa.MFFL:
			opc = opMffl
		case isa.MFFH:
			opc = opMffh
		case isa.FMV:
			opc = opFmv
		}
		rx, err := reg4(in, in.Rd)
		if err != nil {
			return 0, err
		}
		ry, err := reg4(in, in.Rs1)
		if err != nil {
			return 0, err
		}
		return encREG(opc, ry, rx), nil

	case isa.ANDI, isa.ORI, isa.XORI, isa.MVHI:
		return 0, bad(in, "operation is DLXe-only")
	}
	return 0, bad(in, "unsupported operation")
}
