package d16

import (
	"fmt"

	"repro/internal/isa"
)

// DecodeError describes an instruction word with no defined decoding.
type DecodeError struct {
	Word uint16
	PC   uint32
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("d16: undefined instruction %#04x at %#x", e.Word, e.PC)
}

func sext(v uint16, bits uint) int32 {
	shift := 32 - bits
	return int32(uint32(v)<<shift) >> shift
}

// Decode reconstructs the canonical instruction from a 16-bit D16 word
// (base variant). pc is the instruction's own address (needed to express
// BR and LDC displacements relative to it).
func Decode(word uint16, pc uint32) (isa.Instr, error) {
	return DecodeV(word, pc, Variant{})
}

// DecodeV decodes under an explicit variant.
func DecodeV(word uint16, pc uint32, v Variant) (isa.Instr, error) {
	switch {
	case word>>15 == 1: // MEM
		op := isa.LD
		if word>>13&3 == 1 {
			op = isa.ST
		} else if word>>13&3 != 0 {
			return isa.Instr{}, &DecodeError{word, pc}
		}
		return isa.Instr{
			Op:  op,
			Rd:  isa.R(int(word & 0xF)),
			Rs1: isa.R(int(word >> 4 & 0xF)),
			Imm: int32(word>>8&0x1F) * 4,
		}, nil

	case word>>14 == 1: // REG
		return decodeREG(word, pc)

	case word>>13 == 1: // MVI (and CMPEQI under the cmp8 variant)
		if v.Cmp8 {
			if word>>12&1 == 1 {
				return isa.Instr{
					Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC,
					Rs1: isa.R(int(word & 0xF)),
					Imm: int32(word >> 4 & 0xFF), HasImm: true,
				}, nil
			}
			return isa.Instr{
				Op:     isa.MVI,
				Rd:     isa.R(int(word & 0xF)),
				Imm:    sext(word>>4&0xFF, 8),
				HasImm: true,
			}, nil
		}
		return isa.Instr{
			Op:     isa.MVI,
			Rd:     isa.R(int(word & 0xF)),
			Imm:    sext(word>>4&0x1FF, 9),
			HasImm: true,
		}, nil

	default: // BR / LDC
		off := sext(word&0x7FF, 11)
		switch word >> 11 & 3 {
		case 0:
			return isa.Instr{Op: isa.BR, Imm: off * Bytes}, nil
		case 1:
			return isa.Instr{Op: isa.BZ, Rs1: isa.RegCC, Imm: off * Bytes}, nil
		case 2:
			return isa.Instr{Op: isa.BNZ, Rs1: isa.RegCC, Imm: off * Bytes}, nil
		default:
			target := int64(pc&^3) + int64(off)*4
			return isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg,
				Imm: int32(target - int64(pc))}, nil
		}
	}
}

func decodeREG(word uint16, pc uint32) (isa.Instr, error) {
	opcode := word >> 8 & 0x3F
	ry := int(word >> 4 & 0xF)
	rx := int(word & 0xF)
	gg := func(op isa.Op) (isa.Instr, error) { // two-address rx op= ry
		return isa.Instr{Op: op, Rd: isa.R(rx), Rs1: isa.R(rx), Rs2: isa.R(ry)}, nil
	}
	imm5 := func(op isa.Op, hi uint16) (isa.Instr, error) {
		return isa.Instr{Op: op, Rd: isa.R(rx), Rs1: isa.R(rx),
			Imm: int32(hi<<4 | uint16(ry)), HasImm: true}, nil
	}
	switch opcode {
	case opNop:
		return isa.MakeNop(), nil
	case opMv:
		return isa.Instr{Op: isa.MV, Rd: isa.R(rx), Rs1: isa.R(ry)}, nil
	case opAdd:
		return gg(isa.ADD)
	case opSub:
		return gg(isa.SUB)
	case opAnd:
		return gg(isa.AND)
	case opOr:
		return gg(isa.OR)
	case opXor:
		return gg(isa.XOR)
	case opShl:
		return gg(isa.SHL)
	case opShr:
		return gg(isa.SHR)
	case opShra:
		return gg(isa.SHRA)
	case opNeg:
		return isa.Instr{Op: isa.NEG, Rd: isa.R(rx), Rs1: isa.R(rx)}, nil
	case opInv:
		return isa.Instr{Op: isa.INV, Rd: isa.R(rx), Rs1: isa.R(rx)}, nil
	case opAddi, opAddi + 1:
		return imm5(isa.ADDI, opcode&1)
	case opSubi, opSubi + 1:
		return imm5(isa.SUBI, opcode&1)
	case opShli, opShli + 1:
		return imm5(isa.SHLI, opcode&1)
	case opShri, opShri + 1:
		return imm5(isa.SHRI, opcode&1)
	case opShrai, opShrai + 1:
		return imm5(isa.SHRAI, opcode&1)
	case opLdh, opLdhu, opLdb, opLdbu:
		op := map[uint16]isa.Op{opLdh: isa.LDH, opLdhu: isa.LDHU,
			opLdb: isa.LDB, opLdbu: isa.LDBU}[opcode]
		return isa.Instr{Op: op, Rd: isa.R(rx), Rs1: isa.R(ry)}, nil
	case opSth, opStb:
		op := isa.STH
		if opcode == opStb {
			op = isa.STB
		}
		return isa.Instr{Op: op, Rd: isa.R(rx), Rs1: isa.R(ry)}, nil
	case opCmpLT, opCmpLT + 1, opCmpLT + 2, opCmpLT + 3, opCmpLT + 4, opCmpLT + 5:
		return isa.Instr{Op: isa.CMP, Cond: isa.LT + isa.Cond(opcode-opCmpLT),
			Rd: isa.RegCC, Rs1: isa.R(rx), Rs2: isa.R(ry)}, nil
	case opMisc:
		switch ry {
		case miscJ:
			return isa.Instr{Op: isa.J, Rs1: isa.R(rx)}, nil
		case miscJz:
			return isa.Instr{Op: isa.JZ, Rs1: isa.R(rx)}, nil
		case miscJnz:
			return isa.Instr{Op: isa.JNZ, Rs1: isa.R(rx)}, nil
		case miscJl:
			return isa.Instr{Op: isa.JL, Rs1: isa.R(rx)}, nil
		case miscRdsr:
			return isa.Instr{Op: isa.RDSR, Rd: isa.R(rx)}, nil
		}
		return isa.Instr{}, &DecodeError{word, pc}
	case opTrap:
		return isa.Instr{Op: isa.TRAP, Imm: int32(ry<<4 | rx), HasImm: true}, nil
	case opFAddS, opFAddS + 1, opFAddS + 2, opFAddS + 3:
		return isa.Instr{Op: isa.FADDS + isa.Op(opcode-opFAddS),
			Rd: isa.F(rx), Rs1: isa.F(rx), Rs2: isa.F(ry)}, nil
	case opFAddS + 4:
		return isa.Instr{Op: isa.FNEGS, Rd: isa.F(rx), Rs1: isa.F(rx)}, nil
	case opFAddD, opFAddD + 1, opFAddD + 2, opFAddD + 3:
		return isa.Instr{Op: isa.FADDD + isa.Op(opcode-opFAddD),
			Rd: isa.F(rx), Rs1: isa.F(rx), Rs2: isa.F(ry)}, nil
	case opFAddD + 4:
		return isa.Instr{Op: isa.FNEGD, Rd: isa.F(rx), Rs1: isa.F(rx)}, nil
	case opFCmpS, opFCmpS + 1, opFCmpS + 2, opFCmpD, opFCmpD + 1, opFCmpD + 2:
		op := isa.FCMPS
		sub := opcode - opFCmpS
		if opcode >= opFCmpD {
			op = isa.FCMPD
			sub = opcode - opFCmpD
		}
		cond := [3]isa.Cond{isa.LT, isa.LE, isa.EQ}[sub]
		return isa.Instr{Op: op, Cond: cond, Rs1: isa.F(rx), Rs2: isa.F(ry)}, nil
	case opCvt, opCvt + 1, opCvt + 2, opCvt + 3, opCvt + 4, opCvt + 5:
		op := isa.CVTSISF + isa.Op(opcode-opCvt)
		var rd, rs isa.Reg
		switch op {
		case isa.CVTSISF, isa.CVTSIDF: // int -> fp
			rd, rs = isa.F(rx), isa.R(ry)
		case isa.CVTDFSI, isa.CVTSFSI: // fp -> int
			rd, rs = isa.R(rx), isa.F(ry)
		default: // fp -> fp
			rd, rs = isa.F(rx), isa.F(ry)
		}
		return isa.Instr{Op: op, Rd: rd, Rs1: rs}, nil
	case opMvfl:
		return isa.Instr{Op: isa.MVFL, Rd: isa.F(rx), Rs1: isa.R(ry)}, nil
	case opMvfh:
		return isa.Instr{Op: isa.MVFH, Rd: isa.F(rx), Rs1: isa.R(ry)}, nil
	case opMffl:
		return isa.Instr{Op: isa.MFFL, Rd: isa.R(rx), Rs1: isa.F(ry)}, nil
	case opMffh:
		return isa.Instr{Op: isa.MFFH, Rd: isa.R(rx), Rs1: isa.F(ry)}, nil
	case opFmv:
		return isa.Instr{Op: isa.FMV, Rd: isa.F(rx), Rs1: isa.F(ry)}, nil
	}
	return isa.Instr{}, &DecodeError{word, pc}
}
