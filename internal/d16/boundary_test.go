package d16

import (
	"testing"

	"repro/internal/isa"
)

// bpc is a word-aligned PC so LDC's (pc &^ 3) base equals pc.
const bpc = uint32(isa.TextBase)

// roundTrip encodes in, decodes the word back, and requires the decoded
// instruction to re-encode to the identical bits with the same op and
// immediate — the property the disassembler round-trip rests on.
func roundTrip(t *testing.T, in isa.Instr, v Variant) {
	t.Helper()
	w, err := EncodeV(in, bpc, v)
	if err != nil {
		t.Fatalf("encode %q: %v", in.String(), err)
	}
	dec, err := DecodeV(w, bpc, v)
	if err != nil {
		t.Fatalf("decode %#04x (%q): %v", w, in.String(), err)
	}
	if dec.Op != in.Op || dec.Imm != in.Imm {
		t.Fatalf("round trip %q -> %q (op %v imm %d)", in.String(), dec.String(), dec.Op, dec.Imm)
	}
	w2, err := EncodeV(dec, bpc, v)
	if err != nil {
		t.Fatalf("re-encode %q: %v", dec.String(), err)
	}
	if w2 != w {
		t.Fatalf("re-encode %q: %#04x != %#04x", in.String(), w2, w)
	}
}

func mustFail(t *testing.T, in isa.Instr, v Variant) {
	t.Helper()
	if w, err := EncodeV(in, bpc, v); err == nil {
		t.Fatalf("encode %q: got %#04x, want range error", in.String(), w)
	}
}

// TestBranchBoundary: the 11-bit instruction-unit branch field reaches
// [-1024, +1023] instructions = [-2048, +2046] bytes.
func TestBranchBoundary(t *testing.T) {
	cc := isa.RegCC
	for _, imm := range []int32{-2048, -2, 0, 2, 2046} {
		roundTrip(t, isa.Instr{Op: isa.BR, Imm: imm, HasImm: true}, Variant{})
		roundTrip(t, isa.Instr{Op: isa.BZ, Rs1: cc, Imm: imm, HasImm: true}, Variant{})
		roundTrip(t, isa.Instr{Op: isa.BNZ, Rs1: cc, Imm: imm, HasImm: true}, Variant{})
	}
	for _, imm := range []int32{-2050, 2048, 3} {
		mustFail(t, isa.Instr{Op: isa.BR, Imm: imm, HasImm: true}, Variant{})
	}
}

// TestMVIBoundary: 9-bit signed move immediate, shrunk to 8 bits under
// the D16+ variant.
func TestMVIBoundary(t *testing.T) {
	mvi := func(imm int32) isa.Instr {
		return isa.Instr{Op: isa.MVI, Rd: isa.R(4), Imm: imm, HasImm: true}
	}
	for _, imm := range []int32{-256, -1, 0, 255} {
		roundTrip(t, mvi(imm), Variant{})
	}
	mustFail(t, mvi(-257), Variant{})
	mustFail(t, mvi(256), Variant{})

	cmp8 := Variant{Cmp8: true}
	for _, imm := range []int32{-128, 0, 127} {
		roundTrip(t, mvi(imm), cmp8)
	}
	mustFail(t, mvi(-129), cmp8)
	mustFail(t, mvi(128), cmp8)
}

// TestCmpEqImmBoundary: the D16+ compare-equal immediate is unsigned
// 8-bit and exists only under the variant.
func TestCmpEqImmBoundary(t *testing.T) {
	cmpi := func(imm int32) isa.Instr {
		return isa.Instr{Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC, Rs1: isa.R(5), Imm: imm, HasImm: true}
	}
	cmp8 := Variant{Cmp8: true}
	for _, imm := range []int32{0, 255} {
		roundTrip(t, cmpi(imm), cmp8)
	}
	mustFail(t, cmpi(-1), cmp8)
	mustFail(t, cmpi(256), cmp8)
	mustFail(t, cmpi(0), Variant{}) // no compare immediate in base D16
}

// TestALUImmBoundary: 5-bit unsigned ALU immediates, top bit in the
// opcode.
func TestALUImmBoundary(t *testing.T) {
	alu := func(op isa.Op, imm int32) isa.Instr {
		return isa.Instr{Op: op, Rd: isa.R(4), Rs1: isa.R(4), Imm: imm, HasImm: true}
	}
	for _, op := range []isa.Op{isa.ADDI, isa.SUBI, isa.SHLI, isa.SHRI, isa.SHRAI} {
		for _, imm := range []int32{0, 15, 16, 31} { // 16 flips the opcode-resident bit
			roundTrip(t, alu(op, imm), Variant{})
		}
		mustFail(t, alu(op, -1), Variant{})
		mustFail(t, alu(op, 32), Variant{})
	}
}

// TestMemDispBoundary: 5-bit word displacements reach [0, 124] bytes in
// steps of 4; subword modes take no displacement at all.
func TestMemDispBoundary(t *testing.T) {
	mem := func(op isa.Op, imm int32) isa.Instr {
		return isa.Instr{Op: op, Rd: isa.R(4), Rs1: isa.R(2), Imm: imm}
	}
	for _, imm := range []int32{0, 4, 124} {
		roundTrip(t, mem(isa.LD, imm), Variant{})
		roundTrip(t, mem(isa.ST, imm), Variant{})
	}
	for _, imm := range []int32{-4, 2, 125, 128} {
		mustFail(t, mem(isa.LD, imm), Variant{})
	}
	mustFail(t, mem(isa.LDB, 4), Variant{})
	mustFail(t, mem(isa.STH, 4), Variant{})
}

// TestLDCBoundary: the 11-bit word offset reaches ±4 KiB around the
// aligned PC.
func TestLDCBoundary(t *testing.T) {
	ldc := func(imm int32) isa.Instr {
		return isa.Instr{Op: isa.LDC, Rd: isa.RegCC, Rs1: isa.NoReg, Imm: imm, HasImm: true}
	}
	for _, imm := range []int32{-4096, 0, 4092} {
		roundTrip(t, ldc(imm), Variant{})
	}
	mustFail(t, ldc(-4100), Variant{})
	mustFail(t, ldc(4096), Variant{})
	mustFail(t, ldc(2), Variant{}) // unaligned literal
}
