package d16

import (
	"testing"

	"repro/internal/isa"
)

var cmp8 = Variant{Cmp8: true}

func TestCmp8VariantRoundTrip(t *testing.T) {
	const pc = 0x1000
	cases := []isa.Instr{
		{Op: isa.MVI, Rd: isa.R(4), Imm: -128, HasImm: true},
		{Op: isa.MVI, Rd: isa.R(4), Imm: 127, HasImm: true},
		{Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC, Rs1: isa.R(5), Imm: 0, HasImm: true},
		{Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC, Rs1: isa.R(5), Imm: 255, HasImm: true},
	}
	for _, in := range cases {
		w, err := EncodeV(in, pc, cmp8)
		if err != nil {
			t.Fatalf("EncodeV(%v): %v", in, err)
		}
		got, err := DecodeV(w, pc, cmp8)
		if err != nil {
			t.Fatalf("DecodeV(%#04x): %v", w, err)
		}
		if got != in {
			t.Errorf("round trip %v -> %#04x -> %v", in, w, got)
		}
	}
}

func TestCmp8VariantRestrictsMVI(t *testing.T) {
	in := isa.Instr{Op: isa.MVI, Rd: isa.R(4), Imm: 200, HasImm: true}
	if _, err := EncodeV(in, 0x1000, cmp8); err == nil {
		t.Error("mvi 200 must not encode under the 8-bit variant")
	}
	if _, err := Encode(in, 0x1000); err != nil {
		t.Errorf("mvi 200 must encode in the base format: %v", err)
	}
}

func TestBaseVariantRejectsCmpImm(t *testing.T) {
	in := isa.Instr{Op: isa.CMP, Cond: isa.EQ, Rd: isa.RegCC,
		Rs1: isa.R(5), Imm: 10, HasImm: true}
	if _, err := Encode(in, 0x1000); err == nil {
		t.Error("base D16 has no compare-immediate")
	}
	// And the variant accepts only eq.
	in.Cond = isa.LT
	if _, err := EncodeV(in, 0x1000, cmp8); err == nil {
		t.Error("cmp8 variant must accept eq only")
	}
}

// The two variants must agree on every encoding outside the MVI format.
func TestVariantsAgreeOutsideMVI(t *testing.T) {
	const pc = 0x1000
	for w := 0; w <= 0xFFFF; w++ {
		if uint16(w)>>13 == 1 {
			continue // the MVI/CMPEQI space
		}
		a, errA := Decode(uint16(w), pc)
		b, errB := DecodeV(uint16(w), pc, cmp8)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("word %#04x: decode disagreement (%v vs %v)", w, errA, errB)
		}
		if errA == nil && a != b {
			t.Fatalf("word %#04x: %v vs %v", w, a, b)
		}
	}
}
